"""Tables with primary keys, maintained secondary indexes and pluggable
row storage.

Row *state* lives in a :class:`~repro.storage.engine.StorageEngine`
(ISSUE 8): :class:`~repro.storage.engine.MemoryEngine` is the seed's
dict behavior and the default, :class:`~repro.storage.log.LogEngine`
adds WAL + snapshot durability, and
:class:`~repro.storage.engine.ShardedEngine` hash-partitions rows
across child engines.  The table keeps everything semantic — schema
validation, primary-key enforcement, secondary indexes — so engines
are swappable without observable behavior changes (the randomized
parity suite in ``tests/test_storage.py`` pins this row-for-row).

Rows are identified by a monotonically increasing, never-reused row
id; all mutation goes through :meth:`insert`, :meth:`delete_where` and
:meth:`update_where` so indexes never go stale.  Each public mutation
is one engine :meth:`~repro.storage.engine.StorageEngine.batch` — on a
durable engine that means exactly one WAL record per logical
operation, carrying the mutation as an updategram payload.

A table constructed over an engine that already holds rows (a
``LogEngine`` that just recovered from disk) attaches to that state:
indexes are rebuilt from the engine scan and the primary-key index is
backfilled, so recovery restores secondary-index-visible behavior, not
just rows.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.relational.errors import IntegrityError, SchemaError
from repro.relational.index import HashIndex, SortedIndex
from repro.relational.schema import TableSchema
from repro.storage.engine import MemoryEngine, StorageEngine
from repro.storage.records import encode_row, sorted_rows


class Table:
    """A heap of row tuples with optional primary key and indexes."""

    def __init__(self, schema: TableSchema, engine: StorageEngine | None = None):  # noqa: D107
        self.schema = schema
        self.engine = engine if engine is not None else MemoryEngine()
        self._pk_index: HashIndex | None = (
            HashIndex(schema.primary_key) if schema.primary_key else None
        )
        self._hash_indexes: dict[tuple[str, ...], HashIndex] = {}
        self._sorted_indexes: dict[str, SortedIndex] = {}
        if len(self.engine):
            # Recovery attach: the engine came back from disk with rows;
            # rebuild everything index-shaped from the engine scan.
            self.rebuild_indexes()

    # -- index management ----------------------------------------------
    def create_hash_index(self, columns: tuple[str, ...] | list[str]) -> None:
        """Create (and backfill) a hash index on ``columns``."""
        columns = tuple(columns)
        for name in columns:
            self.schema.column_index(name)  # validates
        if columns in self._hash_indexes:
            return
        index = HashIndex(columns)
        positions = [self.schema.column_index(name) for name in columns]
        for row_id, row in self.engine.scan():
            index.insert(tuple(row[p] for p in positions), row_id)
        self._hash_indexes[columns] = index

    def create_sorted_index(self, column: str) -> None:
        """Create (and backfill) a sorted index on a single column."""
        position = self.schema.column_index(column)
        if column in self._sorted_indexes:
            return
        index = SortedIndex(column)
        for row_id, row in self.engine.scan():
            index.insert(row[position], row_id)
        self._sorted_indexes[column] = index

    def rebuild_indexes(self) -> None:
        """Re-derive every index (primary, hash, sorted) from the engine.

        Used when attaching to a recovered engine and safe to call any
        time the engine state is trusted over the index state.
        """
        if self._pk_index is not None:
            self._pk_index.clear()
        for index in self._hash_indexes.values():
            index.clear()
        for index in self._sorted_indexes.values():
            index.clear()
        for row_id, row in self.engine.scan():
            self._index_insert(row, row_id)

    def hash_index_for(self, columns: set[str]) -> HashIndex | None:
        """The widest hash index whose columns are all in ``columns``."""
        best: HashIndex | None = None
        for index_columns, index in self._hash_indexes.items():
            if set(index_columns) <= columns:
                if best is None or len(index_columns) > len(best.columns):
                    best = index
        return best

    def sorted_index_for(self, column: str) -> SortedIndex | None:
        """The sorted index on ``column`` if one exists."""
        return self._sorted_indexes.get(column)

    # -- mutation --------------------------------------------------------
    def insert(self, values: tuple | list | Mapping[str, object]) -> int:
        """Insert one row; returns its row id.

        Accepts a positional tuple/list or a mapping of column names (with
        missing columns defaulting to ``None``).
        """
        if isinstance(values, Mapping):
            unknown = set(values) - set(self.schema.column_names)
            if unknown:
                raise SchemaError(f"unknown columns in insert: {sorted(unknown)}")
            values = tuple(values.get(name) for name in self.schema.column_names)
        row = self.schema.validate_row(tuple(values))
        key = self.schema.key_of(row)
        if self._pk_index is not None and key is not None:
            if self._pk_index.lookup(key):
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.schema.name}"
                )
        with self.engine.batch() as batch:
            row_id = self.engine.append(row)
            self._index_insert(row, row_id)
            if batch.wants_logical:
                batch.annotate(
                    "updategram",
                    {"inserts": {self.schema.name: [encode_row(row)]}, "deletes": {}},
                )
        return row_id

    def _index_insert(self, row: tuple, row_id: int) -> None:
        if self._pk_index is not None:
            key = self.schema.key_of(row)
            if key is not None:
                self._pk_index.insert(key, row_id)
        for columns, index in self._hash_indexes.items():
            positions = [self.schema.column_index(name) for name in columns]
            index.insert(tuple(row[p] for p in positions), row_id)
        for column, index in self._sorted_indexes.items():
            index.insert(row[self.schema.column_index(column)], row_id)

    def _index_remove(self, row: tuple, row_id: int) -> None:
        if self._pk_index is not None:
            key = self.schema.key_of(row)
            if key is not None:
                self._pk_index.remove(key, row_id)
        for columns, index in self._hash_indexes.items():
            positions = [self.schema.column_index(name) for name in columns]
            index.remove(tuple(row[p] for p in positions), row_id)
        for column, index in self._sorted_indexes.items():
            index.remove(row[self.schema.column_index(column)], row_id)

    def delete_row(self, row_id: int) -> bool:
        """Delete by row id; returns True if a live row was removed."""
        with self.engine.batch() as batch:
            row = self.engine.delete(row_id)
            if row is None:
                return False
            self._index_remove(row, row_id)
            if batch.wants_logical:
                batch.annotate(
                    "updategram",
                    {"inserts": {}, "deletes": {self.schema.name: [encode_row(row)]}},
                )
        return True

    def delete_where(self, predicate) -> int:
        """Delete rows matching ``predicate(row_dict) -> bool``; returns count."""
        deleted: list[tuple] = []
        with self.engine.batch() as batch:
            for row_id, row in list(self.engine.scan()):
                if predicate(self.row_dict(row)):
                    self.delete_row(row_id)
                    deleted.append(row)
            if deleted and batch.wants_logical:
                batch.annotate(
                    "updategram",
                    {"inserts": {}, "deletes": {self.schema.name: sorted_rows(deleted)}},
                )
        return len(deleted)

    def update_where(self, predicate, changes: Mapping[str, object]) -> int:
        """Update matching rows with ``changes``; returns affected count."""
        for name in changes:
            self.schema.column_index(name)
        removed: list[tuple] = []
        added: list[tuple] = []
        with self.engine.batch() as batch:
            for row_id, row in list(self.engine.scan()):
                if not predicate(self.row_dict(row)):
                    continue
                new_values = list(row)
                for name, value in changes.items():
                    new_values[self.schema.column_index(name)] = value
                new_row = self.schema.validate_row(tuple(new_values))
                key_before = self.schema.key_of(row)
                key_after = self.schema.key_of(new_row)
                if (
                    self._pk_index is not None
                    and key_after != key_before
                    and self._pk_index.lookup(key_after)
                ):
                    raise IntegrityError(
                        f"update would duplicate primary key {key_after!r}"
                    )
                self._index_remove(row, row_id)
                self.engine.replace(row_id, new_row)
                self._index_insert(new_row, row_id)
                removed.append(row)
                added.append(new_row)
            if removed and batch.wants_logical:
                batch.annotate(
                    "updategram",
                    {
                        "inserts": {self.schema.name: sorted_rows(added)},
                        "deletes": {self.schema.name: sorted_rows(removed)},
                    },
                )
        return len(removed)

    # -- access ----------------------------------------------------------
    def row_dict(self, row: tuple) -> dict[str, object]:
        """Convert a stored tuple into a column-name keyed dict."""
        return dict(zip(self.schema.column_names, row))

    def raw_row(self, row_id: int) -> tuple | None:
        """The stored tuple for ``row_id`` (None for deleted/invalid ids).

        Positional access for hot paths that resolve column positions
        once instead of building a dict per row (see
        :meth:`repro.rdf.store.TripleStore.match`).
        """
        return self.engine.get(row_id)

    def get_row(self, row_id: int) -> dict[str, object] | None:
        """Row dict by id, or None for deleted/invalid ids."""
        row = self.engine.get(row_id)
        if row is not None:
            return self.row_dict(row)
        return None

    def lookup_pk(self, key: tuple) -> dict[str, object] | None:
        """Primary-key point lookup."""
        if self._pk_index is None:
            raise SchemaError(f"table {self.schema.name} has no primary key")
        for row_id in self._pk_index.lookup(tuple(key)):
            return self.get_row(row_id)
        return None

    def raw_scan(self) -> Iterator[tuple]:
        """Yield every live row as its raw tuple, in row-id order."""
        for _row_id, row in self.engine.scan():
            yield row

    def scan(self) -> Iterator[dict[str, object]]:
        """Yield every live row as a dict."""
        for _row_id, row in self.engine.scan():
            yield self.row_dict(row)

    def scan_ids(self) -> Iterator[tuple[int, dict[str, object]]]:
        """Yield ``(row_id, row_dict)`` for every live row."""
        for row_id, row in self.engine.scan():
            yield row_id, self.row_dict(row)

    def checkpoint(self) -> None:
        """Ask the engine to snapshot (no-op on volatile engines)."""
        self.engine.checkpoint()

    def close(self) -> None:
        """Release the engine's file handles (no-op on volatile engines)."""
        self.engine.close()

    def __len__(self) -> int:
        return len(self.engine)

    def __repr__(self) -> str:
        return (
            f"<Table {self.schema.name} rows={len(self.engine)} "
            f"engine={self.engine.kind}>"
        )
