"""A small recursive-descent XML parser (well-formed subset).

Supports elements, attributes (single or double quoted), text, comments,
self-closing tags and the five predefined entities.  No namespaces,
processing instructions beyond an ignored prolog, or CDATA — the
documents REVERE exchanges do not need them.
"""

from __future__ import annotations

import re

from repro.xmlmodel.tree import XmlElement, XmlText


class XmlParseError(ValueError):
    """Raised on malformed input, with position information."""

    def __init__(self, message: str, position: int):  # noqa: D107
        super().__init__(f"{message} (at offset {position})")
        self.position = position


_NAME_RE = re.compile(r"[A-Za-z_][\w.\-:]*")
_ENTITIES = {"&amp;": "&", "&lt;": "<", "&gt;": ">", "&quot;": '"', "&apos;": "'"}


def _unescape(value: str) -> str:
    for entity, char in _ENTITIES.items():
        value = value.replace(entity, char)
    return value


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.pos = 0

    def error(self, message: str) -> XmlParseError:
        return XmlParseError(message, self.pos)

    def skip_misc(self) -> None:
        """Skip whitespace, comments and the XML prolog between elements."""
        while True:
            while self.pos < len(self.source) and self.source[self.pos].isspace():
                self.pos += 1
            if self.source.startswith("<!--", self.pos):
                end = self.source.find("-->", self.pos + 4)
                if end == -1:
                    raise self.error("unterminated comment")
                self.pos = end + 3
            elif self.source.startswith("<?", self.pos):
                end = self.source.find("?>", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated processing instruction")
                self.pos = end + 2
            elif self.source.startswith("<!DOCTYPE", self.pos):
                end = self.source.find(">", self.pos)
                if end == -1:
                    raise self.error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def parse_name(self) -> str:
        match = _NAME_RE.match(self.source, self.pos)
        if not match:
            raise self.error("expected a name")
        self.pos = match.end()
        return match.group(0)

    def parse_attributes(self) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            while self.pos < len(self.source) and self.source[self.pos].isspace():
                self.pos += 1
            ch = self.source[self.pos : self.pos + 1]
            if ch in (">", "/", ""):
                return attributes
            name = self.parse_name()
            while self.pos < len(self.source) and self.source[self.pos].isspace():
                self.pos += 1
            if self.source[self.pos : self.pos + 1] != "=":
                raise self.error(f"expected '=' after attribute {name!r}")
            self.pos += 1
            while self.pos < len(self.source) and self.source[self.pos].isspace():
                self.pos += 1
            quote = self.source[self.pos : self.pos + 1]
            if quote not in ("'", '"'):
                raise self.error("attribute value must be quoted")
            self.pos += 1
            end = self.source.find(quote, self.pos)
            if end == -1:
                raise self.error("unterminated attribute value")
            attributes[name] = _unescape(self.source[self.pos : end])
            self.pos = end + 1

    def parse_element(self) -> XmlElement:
        if self.source[self.pos : self.pos + 1] != "<":
            raise self.error("expected '<'")
        self.pos += 1
        tag = self.parse_name()
        attributes = self.parse_attributes()
        if self.source.startswith("/>", self.pos):
            self.pos += 2
            return XmlElement(tag, attributes)
        if self.source[self.pos : self.pos + 1] != ">":
            raise self.error(f"malformed start tag <{tag}>")
        self.pos += 1
        node = XmlElement(tag, attributes)
        while True:
            if self.pos >= len(self.source):
                raise self.error(f"unexpected end of input inside <{tag}>")
            if self.source.startswith("</", self.pos):
                self.pos += 2
                closing = self.parse_name()
                if closing != tag:
                    raise self.error(f"mismatched close tag: <{tag}> ... </{closing}>")
                while self.pos < len(self.source) and self.source[self.pos].isspace():
                    self.pos += 1
                if self.source[self.pos : self.pos + 1] != ">":
                    raise self.error("malformed close tag")
                self.pos += 1
                return node
            if self.source.startswith("<!--", self.pos):
                end = self.source.find("-->", self.pos + 4)
                if end == -1:
                    raise self.error("unterminated comment")
                self.pos = end + 3
                continue
            if self.source[self.pos] == "<":
                node.append(self.parse_element())
                continue
            next_tag = self.source.find("<", self.pos)
            if next_tag == -1:
                raise self.error(f"unexpected end of input inside <{tag}>")
            raw = self.source[self.pos : next_tag]
            if raw:
                node.append(XmlText(_unescape(raw)))
            self.pos = next_tag


def parse_xml(source: str) -> XmlElement:
    """Parse a document and return its root element.

    >>> parse_xml("<a x='1'><b>hi</b></a>").first("b").text_content()
    'hi'
    """
    parser = _Parser(source)
    parser.skip_misc()
    root = parser.parse_element()
    parser.skip_misc()
    if parser.pos != len(parser.source):
        raise parser.error("trailing content after document element")
    return root
