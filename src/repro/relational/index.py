"""Secondary indexes: hash (equality) and sorted (range)."""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator


class HashIndex:
    """Equality index mapping a key tuple to the set of row ids."""

    def __init__(self, columns: tuple[str, ...]):  # noqa: D107
        self.columns = columns
        self._buckets: dict[tuple, set[int]] = {}

    def insert(self, key: tuple, row_id: int) -> None:
        """Register ``row_id`` under ``key``."""
        self._buckets.setdefault(key, set()).add(row_id)

    def remove(self, key: tuple, row_id: int) -> None:
        """Unregister ``row_id``; empty buckets are discarded."""
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(row_id)
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: tuple) -> set[int]:
        """Row ids stored under ``key`` (empty set if none)."""
        return self._buckets.get(key, set())

    def clear(self) -> None:
        """Drop every entry (index rebuild after storage recovery)."""
        self._buckets.clear()

    def keys(self) -> Iterable[tuple]:
        """All distinct keys currently indexed."""
        return self._buckets.keys()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Range index over a single column, kept as a sorted key list.

    Supports ``range_lookup(lo, hi)`` with inclusive bounds; ``None``
    means unbounded on that side.  Values must be mutually comparable.
    """

    def __init__(self, column: str):  # noqa: D107
        self.column = column
        self._keys: list[object] = []
        self._rows: dict[object, set[int]] = {}

    def insert(self, key: object, row_id: int) -> None:
        """Register ``row_id`` under scalar ``key`` (``None`` is skipped)."""
        if key is None:
            return
        if key not in self._rows:
            bisect.insort(self._keys, key)
            self._rows[key] = set()
        self._rows[key].add(row_id)

    def remove(self, key: object, row_id: int) -> None:
        """Unregister ``row_id`` from ``key``."""
        rows = self._rows.get(key)
        if rows is None:
            return
        rows.discard(row_id)
        if not rows:
            del self._rows[key]
            position = bisect.bisect_left(self._keys, key)
            if position < len(self._keys) and self._keys[position] == key:
                del self._keys[position]

    def clear(self) -> None:
        """Drop every entry (index rebuild after storage recovery)."""
        self._keys.clear()
        self._rows.clear()

    def range_lookup(self, lo: object = None, hi: object = None) -> Iterator[int]:
        """Yield row ids with ``lo <= key <= hi`` in key order."""
        start = 0 if lo is None else bisect.bisect_left(self._keys, lo)
        end = len(self._keys) if hi is None else bisect.bisect_right(self._keys, hi)
        for key in self._keys[start:end]:
            yield from self._rows[key]

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._rows.values())
