"""The LSD base learners.

"The system uses a multi-strategy learning method that can employ
multiple learners, thereby having the ability to learn from different
kinds of information in the input (e.g., values of the data instances,
names of attributes, proximity of attributes, structure of the schema,
etc)." (Section 4.3.2.)  Four learners cover those signals:

* :class:`NameLearner` — attribute-name similarity (nearest neighbour
  over string measures, synonym-aware);
* :class:`NaiveBayesLearner` — multinomial naive Bayes over the word
  tokens of data values (LSD's content learner);
* :class:`FormatLearner` — naive Bayes over value *shape* features
  (digits, separators, emails, dates...), which distinguishes e.g.
  phone from office number even when vocabulary overlaps;
* :class:`StructureLearner` — cosine over neighbouring-attribute token
  profiles ("proximity of attributes").

Every learner maps an :class:`ElementSample` to a score per label and
normalizes scores into a distribution, so the meta-learner can combine
them.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from dataclasses import dataclass, field

from repro.corpus.model import CorpusSchema
from repro.text import (
    SynonymTable,
    jaro_winkler,
    token_set_similarity,
    tokenize,
    tokenize_identifier,
)
from repro.text.tfidf import cosine_similarity


@dataclass
class ElementSample:
    """Everything the learners may look at for one attribute."""

    path: str  # "relation.attribute"
    name: str  # attribute name
    values: list = field(default_factory=list)
    neighbors: list = field(default_factory=list)
    relation: str = ""


def samples_of(schema: CorpusSchema, max_values: int = 50) -> list[ElementSample]:
    """Build one sample per attribute of a schema."""
    samples: list[ElementSample] = []
    for path in schema.attribute_paths():
        relation, _, attribute = path.partition(".")
        values = schema.column_values(path)[:max_values]
        samples.append(
            ElementSample(
                path=path,
                name=attribute,
                values=values,
                neighbors=schema.neighbors(path),
                relation=relation,
            )
        )
    return samples


def _normalize_scores(scores: dict[str, float]) -> dict[str, float]:
    total = sum(scores.values())
    if total <= 0:
        count = len(scores)
        return {label: 1.0 / count for label in scores} if count else {}
    return {label: value / total for label, value in scores.items()}


class BaseLearner:
    """Interface: fit labeled samples, predict a score distribution."""

    name = "base"

    def fit(self, samples: list[ElementSample], labels: list[str]) -> None:
        """Train from samples paired with their true labels."""
        raise NotImplementedError

    def predict(self, sample: ElementSample) -> dict[str, float]:
        """Distribution over labels (higher = more likely)."""
        raise NotImplementedError


class NameLearner(BaseLearner):
    """Nearest-neighbour over attribute-name similarity.

    Scores combine the local attribute name with the *qualified* path
    (relation + attribute), so ``faculty.name`` prefers the mediated
    ``instructor.name`` over ``department.name`` — the relation context
    disambiguates homonym attributes like ``id`` and ``name``.
    """

    name = "name"

    def __init__(self, synonyms: SynonymTable | None = None, path_weight: float = 0.5):  # noqa: D107
        self.synonyms = synonyms
        self.path_weight = path_weight
        self._exemplars_per_label: dict[str, set[tuple[str, str]]] = {}

    def fit(self, samples: list[ElementSample], labels: list[str]) -> None:
        self._exemplars_per_label = {}
        for sample, label in zip(samples, labels):
            exemplars = self._exemplars_per_label.setdefault(label, set())
            exemplars.add((sample.name, sample.path))
            # The label itself is also an exemplar (local part + path).
            exemplars.add((label.rsplit(".", 1)[-1], label))

    def _name_similarity(self, a: str, b: str) -> float:
        score = max(jaro_winkler(a.lower(), b.lower()), token_set_similarity(a, b))
        if self.synonyms is not None:
            tokens_a = tokenize_identifier(a, expand_abbreviations=True)
            tokens_b = tokenize_identifier(b, expand_abbreviations=True)
            canon_a = {self.synonyms.canonical(t) for t in tokens_a}
            canon_b = {self.synonyms.canonical(t) for t in tokens_b}
            if canon_a and canon_a == canon_b:
                score = max(score, 1.0)
            elif canon_a & canon_b:
                score = max(score, 0.8)
        return score

    def predict(self, sample: ElementSample) -> dict[str, float]:
        sample_path = sample.path or sample.name
        scores: dict[str, float] = {}
        for label, exemplars in self._exemplars_per_label.items():
            best = 0.0
            for exemplar_name, exemplar_path in exemplars:
                local = self._name_similarity(sample.name, exemplar_name)
                path = self._name_similarity(sample_path, exemplar_path)
                best = max(best, (1 - self.path_weight) * local + self.path_weight * path)
            scores[label] = best
        return _normalize_scores(scores)


class NaiveBayesLearner(BaseLearner):
    """Multinomial naive Bayes over the word tokens of data values."""

    name = "naive-bayes"

    def __init__(self, smoothing: float = 1.0):  # noqa: D107
        self.smoothing = smoothing
        self._token_counts: dict[str, Counter] = {}
        self._label_totals: Counter = Counter()
        self._label_priors: Counter = Counter()
        self._vocabulary: set[str] = set()

    @staticmethod
    def _tokens(values: list) -> list[str]:
        tokens: list[str] = []
        for value in values:
            if isinstance(value, (int, float)):
                tokens.append("#number")
                continue
            tokens.extend(tokenize(str(value)))
        return tokens

    def fit(self, samples: list[ElementSample], labels: list[str]) -> None:
        self._token_counts = {}
        self._label_totals = Counter()
        self._label_priors = Counter()
        self._vocabulary = set()
        for sample, label in zip(samples, labels):
            counts = self._token_counts.setdefault(label, Counter())
            tokens = self._tokens(sample.values)
            counts.update(tokens)
            self._label_totals[label] += len(tokens)
            self._label_priors[label] += 1
            self._vocabulary.update(tokens)

    def predict(self, sample: ElementSample) -> dict[str, float]:
        tokens = self._tokens(sample.values)
        if not self._label_priors:
            return {}
        total_samples = sum(self._label_priors.values())
        vocabulary_size = max(len(self._vocabulary), 1)
        log_scores: dict[str, float] = {}
        for label, prior in self._label_priors.items():
            log_score = math.log(prior / total_samples)
            counts = self._token_counts.get(label, Counter())
            denominator = self._label_totals[label] + self.smoothing * vocabulary_size
            for token in tokens[:200]:
                numerator = counts.get(token, 0) + self.smoothing
                log_score += math.log(numerator / denominator)
            log_scores[label] = log_score
        # Soften to a distribution (log-sum-exp).
        peak = max(log_scores.values())
        scores = {label: math.exp(value - peak) for label, value in log_scores.items()}
        return _normalize_scores(scores)


_FORMAT_PATTERNS: list[tuple[str, re.Pattern]] = [
    ("email", re.compile(r"^[^@\s]+@[^@\s]+\.[^@\s]+$")),
    ("phone", re.compile(r"^[+()\d][\d\s().-]{6,}$")),
    ("date", re.compile(r"^\d{4}-\d{2}-\d{2}$|^\d{1,2}/\d{1,2}/\d{2,4}$")),
    ("time", re.compile(r"^\d{1,2}:\d{2}\s*(am|pm)?$", re.IGNORECASE)),
    ("url", re.compile(r"^https?://")),
    ("integer", re.compile(r"^\d+$")),
    ("decimal", re.compile(r"^\d+\.\d+$")),
    ("code", re.compile(r"^[A-Z]{2,6}\s?\d{2,4}$")),
]


def format_features(value: object) -> list[str]:
    """Shape features of one value."""
    if isinstance(value, bool):
        return ["boolean"]
    if isinstance(value, int):
        return ["integer", "numeric"]
    if isinstance(value, float):
        return ["decimal", "numeric"]
    text = str(value).strip()
    features: list[str] = []
    for name, pattern in _FORMAT_PATTERNS:
        if pattern.match(text):
            features.append(name)
    if not features:
        words = len(text.split())
        if words >= 8:
            features.append("long-text")
        elif words >= 2:
            features.append("phrase")
        else:
            features.append("word")
    if text[:1].isupper():
        features.append("capitalized")
    if any(ch.isdigit() for ch in text) and any(ch.isalpha() for ch in text):
        features.append("alphanumeric")
    features.append(f"len-{min(len(text) // 8, 4)}")
    return features


class FormatLearner(BaseLearner):
    """Naive Bayes over value-shape features."""

    name = "format"

    def __init__(self, smoothing: float = 1.0):  # noqa: D107
        self.smoothing = smoothing
        self._feature_counts: dict[str, Counter] = {}
        self._label_totals: Counter = Counter()
        self._label_priors: Counter = Counter()
        self._features: set[str] = set()

    def fit(self, samples: list[ElementSample], labels: list[str]) -> None:
        self._feature_counts = {}
        self._label_totals = Counter()
        self._label_priors = Counter()
        self._features = set()
        for sample, label in zip(samples, labels):
            counts = self._feature_counts.setdefault(label, Counter())
            for value in sample.values:
                features = format_features(value)
                counts.update(features)
                self._label_totals[label] += len(features)
                self._features.update(features)
            self._label_priors[label] += 1

    def predict(self, sample: ElementSample) -> dict[str, float]:
        if not self._label_priors:
            return {}
        features: list[str] = []
        for value in sample.values[:50]:
            features.extend(format_features(value))
        total_samples = sum(self._label_priors.values())
        feature_count = max(len(self._features), 1)
        log_scores: dict[str, float] = {}
        for label, prior in self._label_priors.items():
            log_score = math.log(prior / total_samples)
            counts = self._feature_counts.get(label, Counter())
            denominator = self._label_totals[label] + self.smoothing * feature_count
            for feature in features:
                log_score += math.log((counts.get(feature, 0) + self.smoothing) / denominator)
            log_scores[label] = log_score
        peak = max(log_scores.values())
        scores = {label: math.exp(value - peak) for label, value in log_scores.items()}
        return _normalize_scores(scores)


class StructureLearner(BaseLearner):
    """Match by the company an attribute keeps: its siblings' tokens."""

    name = "structure"

    def __init__(self):  # noqa: D107
        self._profiles: dict[str, Counter] = {}

    @staticmethod
    def _profile(neighbors: list[str]) -> Counter:
        tokens: Counter = Counter()
        for neighbor in neighbors:
            tokens.update(tokenize_identifier(neighbor, expand_abbreviations=True))
        return tokens

    def fit(self, samples: list[ElementSample], labels: list[str]) -> None:
        self._profiles = {}
        for sample, label in zip(samples, labels):
            profile = self._profiles.setdefault(label, Counter())
            profile.update(self._profile(sample.neighbors))

    def predict(self, sample: ElementSample) -> dict[str, float]:
        vector = dict(self._profile(sample.neighbors))
        scores = {
            label: cosine_similarity(vector, dict(profile))
            for label, profile in self._profiles.items()
        }
        return _normalize_scores(scores)
