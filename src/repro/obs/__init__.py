"""Unified tracing + metrics across the PDMS stack (ISSUE 6).

The stack's leverage claims — index-served reformulation, batched
round trips, incremental view maintenance, candidate blocking — are
only credible if the system can report what it is doing.  This package
is that substrate:

* :class:`~repro.obs.trace.Tracer` — hierarchical spans with
  call-stack context propagation; one served continuous query yields
  one tree covering reformulation → per-peer execution round trips →
  view maintenance decisions.  Disabled by default and near-free
  (a shared no-op span); benchmark C15 gates the *enabled* overhead
  at <= 5% on the C11/C14 workloads.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket latency histograms with p50/p95/p99, JSON export and a
  human-readable :meth:`~repro.obs.metrics.MetricsRegistry.explain`
  report.  Metrics are always on: instruments cache direct metric
  references so recording is an attribute add.

* :class:`Observability` — the facade instrumented components accept
  (``obs=`` keyword everywhere: :class:`~repro.piazza.peer.PDMS`,
  :class:`~repro.piazza.execution.DistributedExecutor`,
  :class:`~repro.piazza.network.SimulatedNetwork`,
  :class:`~repro.piazza.serving.ViewServer`,
  :class:`~repro.search.engine.CorpusSearchEngine`,
  :class:`~repro.corpus.match.pipeline.CorpusMatchPipeline`).  When
  none is given they share the process-wide :func:`default` instance,
  so the default registry aggregates a whole run for free and
  ``benchmarks/conftest.py`` can dump it next to every bench's timing
  output.

The storage layer (ISSUE 8) reports here too: durable engines count
``storage.wal.appends`` / ``storage.wal.bytes`` and
``storage.snapshot.writes`` / ``storage.snapshot.bytes``, recovery
records ``storage.replay.records`` plus the ``storage.replay.ms``
histogram, and :class:`~repro.storage.engine.ShardedEngine` exports
per-shard ``storage.shard.rows.<i>`` gauges (namespaced
``storage.shard.rows.<name>.<i>`` when the engine is named, so several
sharded engines can share one registry without colliding).

The pipeline around the core (ISSUE 10):

* :class:`~repro.obs.context.TraceContext` — the propagatable identity
  of one open span.  The runtime pools capture the caller's context
  (:meth:`~repro.obs.trace.Tracer.current_context`) and activate it on
  every worker, so a parallel fan-out yields ONE trace instead of
  orphan worker roots, and the simulated network stamps each message
  with the emitting span's ids.
* :mod:`repro.obs.profile` — folds completed span trees by path into
  cumulative/self wall-time, call counts and per-path latency
  quantiles (flame-graph-shaped, rendered as a sorted text report).
* :mod:`repro.obs.export` — JSONL span/metrics exporters with a
  stable schema (lossless round trips, pinned property-style) and
  Prometheus text exposition; ``python -m repro.obs`` renders
  snapshots, traces and profiles from the exported files.

See ``docs/observability.md`` for the runnable walkthrough (trace one
C14-style serve, print the span tree and the ``explain()`` report,
then follow one cross-peer parallel execution end to end).
"""

from __future__ import annotations

from repro.obs.context import TraceContext
from repro.obs.metrics import (
    DEFAULT_BUCKETS_COUNT,
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NOOP_SPAN, Span, Tracer


class Observability:
    """One tracer + one registry, handed around as a unit.

    ``Observability()`` is the cheap default (no-op tracer, live
    registry); ``Observability(tracing=True)`` turns on span
    collection.  Components resolve ``obs or repro.obs.default()`` at
    construction, so a bench or test that wants isolation passes its
    own instance and everything downstream inherits it.
    """

    def __init__(
        self,
        tracing: bool = False,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):  # noqa: D107
        self.tracer = tracer if tracer is not None else Tracer(enabled=tracing)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def tracing(self) -> bool:
        """Whether spans are being collected."""
        return self.tracer.enabled

    def explain(self) -> str:
        """Human-readable report: the metrics, then the last trace tree."""
        sections = [self.metrics.explain()]
        last = self.tracer.last_root()
        if last is not None:
            sections.append("last trace:")
            sections.append(self.tracer.render(last))
        return "\n".join(sections)

    def snapshot(self) -> dict:
        """Metrics snapshot plus retained trace trees, as plain dicts."""
        return {
            "metrics": self.metrics.snapshot(),
            "traces": [root.to_dict() for root in self.tracer.root_list()],
        }


_DEFAULT = Observability()


def default() -> Observability:
    """The process-wide default (no-op tracer, shared registry)."""
    return _DEFAULT


__all__ = [
    "DEFAULT_BUCKETS_COUNT",
    "DEFAULT_BUCKETS_MS",
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "TraceContext",
    "Tracer",
    "default",
]
