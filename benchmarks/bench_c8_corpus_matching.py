"""Experiment C8 — the corpus as "domain expert" for matching.

Section 4.4: "the corpus and its associated statistics act as a domain
expert because numerous existing schemas and schema fragments might be
similar to the schemas being matched."  The harness matches hard pairs
(heavy renaming + an Italian-vocabulary side, where string similarity
has nothing to grab) with and without corpus assistance, sweeping the
corpus size.  Expected shape: corpus methods improve with corpus size
and beat the corpus-free matchers on the hard pairs.
"""

import pytest

from repro.bench import ResultTable, mean
from repro.corpus.match import (
    HybridMatcher,
    MatchingAdvisor,
    NameMatcher,
    accuracy,
)
from repro.datasets.perturb import matching_pair
from repro.datasets.university import make_university_corpus, university_schema_instance
from repro.text import default_synonyms
from repro.text.synonyms import italian_english_dictionary


def hard_pairs(trials: int = 3):
    """Heavily perturbed pairs; the right side uses Italian vocabulary."""
    pairs = []
    for trial in range(trials):
        reference = university_schema_instance(seed=50 + trial, courses=12)
        pairs.append(
            matching_pair(
                reference,
                seed=50 + trial,
                level=0.8,
                translation=italian_english_dictionary(),
            )
        )
    return pairs


class TestC8CorpusMatching:
    def test_corpus_size_sweep(self, benchmark):
        pairs = hard_pairs()
        # Corpus-free baselines (no synonyms: the "expert knowledge" must
        # come from the corpus, not from a hand-made dictionary).
        name_matcher = NameMatcher()
        hybrid = HybridMatcher()
        baseline_name = mean(
            accuracy(name_matcher.match(l, r), gold) for l, r, gold in pairs
        )
        baseline_hybrid = mean(
            accuracy(hybrid.match(l, r), gold) for l, r, gold in pairs
        )
        table = ResultTable(
            "C8: corpus-assisted matching accuracy vs corpus size (hard pairs)",
            ["method", "corpus size", "accuracy"],
        )
        table.add_row("name matcher (no corpus)", 0, baseline_name)
        table.add_row("hybrid matcher (no corpus)", 0, baseline_hybrid)
        correlation_curve = []
        for size in (2, 4, 8):
            corpus = make_university_corpus(count=size, seed=60, courses=10)
            advisor = MatchingAdvisor(corpus, synonyms=default_synonyms())
            advisor.train()
            score = mean(
                accuracy(advisor.match_by_correlation(l, r), gold)
                for l, r, gold in pairs
            )
            correlation_curve.append(score)
            table.add_row("matching-advisor (correlation)", size, score)
        corpus = make_university_corpus(count=8, seed=60, courses=10)
        advisor = MatchingAdvisor(corpus, synonyms=default_synonyms())
        pivot_score = mean(
            accuracy(advisor.match_by_pivot(l, r), gold) for l, r, gold in pairs
        )
        table.add_row("matching-advisor (pivot)", 8, pivot_score)
        table.note(
            "hard pairs: rename level 0.8 with one side in Italian. the "
            "instance-trained corpus classifiers recognize columns by their "
            "DATA (names are useless here), so accuracy holds where string "
            "matchers collapse."
        )
        table.show()
        # Shape: with a reasonable corpus, correlation matching beats the
        # corpus-free name matcher on these hard pairs.
        assert max(correlation_curve) > baseline_name
        l, r, gold = pairs[0]
        benchmark(advisor.match_by_correlation, l, r)

    def test_correlation_uses_instances_not_names(self):
        # Same schema pair, but strip the data: accuracy should drop,
        # demonstrating the corpus classifiers rely on instances.
        corpus = make_university_corpus(count=6, seed=61, courses=10)
        advisor = MatchingAdvisor(corpus, synonyms=default_synonyms())
        l, r, gold = hard_pairs(trials=1)[0]
        with_data = accuracy(advisor.match_by_correlation(l, r), gold)
        l.data = {}
        r.data = {}
        without_data = accuracy(advisor.match_by_correlation(l, r), gold)
        assert with_data >= without_data
