"""Dirty-data injection for the constraint-deferral experiment (C4).

Section 2.3 allows anyone to publish anything: values "may be
inconsistent; certain attributes may have multiple values, where there
should be only one; there may even be wrong data that was put on some
web page maliciously."  :func:`inject_conflicts` adds exactly that kind
of dirt — wrong values published from third-party pages — and returns
the truth table so benchmark C4 can score each cleaning policy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.rdf import Triple, TripleStore


@dataclass
class DirtReport:
    """What was injected and what the truth is."""

    truth: dict = field(default_factory=dict)  # (subject, predicate) -> value
    injected: int = 0


def ground_truth(store: TripleStore, predicates: set[str]) -> dict:
    """Current single values per (subject, predicate) before injection."""
    truth: dict = {}
    for triple in store.all_triples():
        if triple.predicate in predicates:
            truth[(triple.subject, triple.predicate)] = triple.object
    return truth


def inject_conflicts(
    store: TripleStore,
    predicates: set[str],
    rate: float,
    seed: int = 0,
    wrong_value=lambda rng, value: f"WRONG-{rng.randint(100, 999)}",
    malicious_sources: int = 3,
) -> DirtReport:
    """Add conflicting values from third-party pages.

    For a ``rate`` fraction of (subject, predicate) facts, one or two
    wrong values are published from external source URLs.  The original
    value (from the subject's own page) stays — the store is now dirty,
    exactly as deferred constraints permit.
    """
    rng = random.Random(seed)
    report = DirtReport(truth=ground_truth(store, predicates))
    sources = [f"http://elsewhere{i}.example.net/page" for i in range(malicious_sources)]
    for (subject, predicate), value in sorted(report.truth.items(), key=str):
        if rng.random() >= rate:
            continue
        copies = rng.choice((1, 2))
        for _ in range(copies):
            store.add(
                Triple(subject, predicate, wrong_value(rng, value), rng.choice(sources)),
                notify=False,
            )
            report.injected += 1
    return report


def score_policy(store: TripleStore, policy, truth: dict) -> dict[str, float]:
    """Accuracy of a cleaning policy against the truth table.

    Returns precision-style metrics: ``correct`` = chose the true value,
    ``wrong`` = chose a false one, ``multi`` = refused to pick one.
    """
    correct = wrong = multi = 0
    for (subject, predicate), value in truth.items():
        chosen = policy.choose(store, subject, predicate)
        if len(chosen) == 1:
            if chosen[0] == value:
                correct += 1
            else:
                wrong += 1
        elif value in chosen:
            multi += 1
        else:
            wrong += 1
    total = max(len(truth), 1)
    return {
        "accuracy": correct / total,
        "wrong": wrong / total,
        "undecided": multi / total,
    }
