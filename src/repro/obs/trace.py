"""Hierarchical spans with context propagation (`repro.obs`).

A :class:`Tracer` produces a tree of :class:`Span`\\ s per top-level
operation: the instrumented hot paths open spans with ``with
tracer.span("pdms.reformulate", ...)`` and nesting follows the call
stack automatically (the tracer keeps the current-span stack, so a
per-peer fetch span opened inside an execute span becomes its child
without any plumbing).  One served continuous query therefore yields
one tree covering reformulation → per-peer execution round trips →
view maintenance decisions — the end-to-end visibility ISSUE 6 asks
for.

Cost discipline:

* **Disabled is the default and near-free.**  ``Tracer(enabled=False)``
  (what :func:`repro.obs.default` hands out) returns one shared
  :data:`NOOP_SPAN` from every ``span()`` call — no allocation, no
  clock read.  Benchmark C15 asserts the *enabled* tracer stays within
  5% on the C11/C14 workloads; disabled it is a single attribute test.
* **Spans always close.**  ``Span.__exit__`` stamps the duration and
  pops the stack even when the body raises; the span's ``error`` flag
  is set and ``error_type`` attribute recorded, then the exception
  propagates (``tests/test_obs.py`` pins this).
* **Bounded retention.**  Finished root spans are kept on
  ``Tracer.roots`` up to ``max_roots`` (oldest dropped) so a
  long-running traced process cannot leak its whole history.

Rendering: :meth:`Tracer.render` draws an indented ASCII tree with
per-span durations and attributes; :meth:`Tracer.to_json` exports the
same trees as plain dicts.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from time import perf_counter


class _NoopSpan:
    """The shared do-nothing span the disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False  # never swallow exceptions

    def annotate(self, **attrs) -> None:
        """Ignore attributes (no span is being recorded)."""


#: Singleton returned by ``Tracer.span`` when tracing is disabled.
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed node in a trace tree.

    Use as a context manager (via :meth:`Tracer.span`); entering pushes
    it onto the tracer's current-span stack, exiting stamps the
    duration, records any exception on the ``error``/``error_type``
    fields, pops the stack, and files root spans on ``Tracer.roots``.
    """

    __slots__ = ("name", "attrs", "error",
                 "_tracer", "_children", "_started", "_duration")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):  # noqa: D107
        self.name = name
        self.attrs = attrs
        self.error = False
        self._tracer = tracer
        # Lazily allocated on first child — most spans are leaves, and
        # the hot paths open thousands of them.
        self._children: list[Span] | None = None
        self._started = 0.0
        self._duration: float | None = None

    @property
    def children(self) -> tuple:
        """Child spans in open order (empty for leaves)."""
        return tuple(self._children) if self._children else ()

    @property
    def duration_ms(self) -> float | None:
        """Wall-clock duration in ms; ``None`` while the span is open."""
        return self._duration

    @property
    def closed(self) -> bool:
        """Whether the span has finished (exited its ``with`` block)."""
        return self._duration is not None

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered mid-span (view hits, payloads)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        if stack:
            parent = stack[-1]
            if parent._children is None:
                parent._children = [self]
            else:
                parent._children.append(self)
        stack.append(self)
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._duration = (perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.error = True
            self.attrs["error_type"] = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        if not stack:
            self._tracer._file_root(self)
        return False  # propagate exceptions

    # -- export ------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form of this span's subtree."""
        node: dict = {"name": self.name, "duration_ms": self._duration}
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.error:
            node["error"] = True
        if self._children:
            node["children"] = [child.to_dict() for child in self._children]
        return node

    def render(self, indent: int = 0) -> str:
        """Indented ASCII rendering of this span's subtree."""
        duration = (
            f"{self._duration:.3f} ms" if self._duration is not None else "open"
        )
        attrs = "".join(
            f" {key}={value}" for key, value in self.attrs.items()
        )
        flag = " !ERROR" if self.error else ""
        lines = [f"{'  ' * indent}- {self.name} [{duration}]{attrs}{flag}"]
        lines.extend(child.render(indent + 1) for child in self._children or ())
        return "\n".join(lines)

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self._children or ():
            found = child.find(name)
            if found is not None:
                return found
        return None

    def names(self) -> list[str]:
        """Every span name in this subtree, depth-first preorder."""
        collected = [self.name]
        for child in self._children or ():
            collected.extend(child.names())
        return collected


class Tracer:
    """Produces span trees; disabled (the default) it is a no-op.

    **One current-span stack per thread.**  Context propagation is call
    nesting, and with the parallel runtime (ISSUE 9) the call stacks
    are per-thread: a span opened inside a pool worker nests under
    whatever that *worker* has open, never under another thread's span,
    so concurrent fan-out cannot corrupt a tree.  Worker spans with
    nothing open on their thread become their own roots on the shared
    ``roots`` deque (``deque.append`` is atomic under the GIL), which
    ``tests/test_runtime.py`` stress-asserts: N threads × M nested
    spans yield exactly N×M well-formed single-thread trees.
    """

    def __init__(self, enabled: bool = False, max_roots: int = 64):  # noqa: D107
        self.enabled = enabled
        self.max_roots = max_roots
        # deque(maxlen=...) makes root filing O(1) with automatic
        # oldest-first eviction — no per-span list shifting.
        self.roots: deque[Span] = deque(maxlen=max_roots)
        self._local = threading.local()

    @property
    def _stack(self) -> list:
        """This thread's current-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs):
        """Open a span (context manager); shared no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def last_root(self) -> Span | None:
        """The most recently finished top-level span."""
        return self.roots[-1] if self.roots else None

    def clear(self) -> None:
        """Drop retained root spans (open spans are unaffected)."""
        self.roots.clear()

    def _file_root(self, span: Span) -> None:
        self.roots.append(span)

    # -- export ------------------------------------------------------------
    def render(self, span: Span | None = None) -> str:
        """ASCII tree of ``span`` (default: the last finished root)."""
        span = span or self.last_root()
        if span is None:
            return "(no finished traces)"
        return span.render()

    def to_json(self, indent: int | None = None) -> str:
        """All retained root trees as JSON."""
        return json.dumps(
            [root.to_dict() for root in self.roots], indent=indent
        )
