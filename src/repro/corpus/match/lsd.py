"""The LSD workflow: learn from manually mapped sources, predict new ones.

"The idea in LSD was that the first few data sources be manually mapped
to the mediated schema.  Based on this training, the system should be
able to predict mappings for subsequent data sources." (Section 4.3.2.)
"""

from __future__ import annotations

from repro.corpus.match.base import MatchResult
from repro.corpus.match.learners import (
    ElementSample,
    FormatLearner,
    NaiveBayesLearner,
    NameLearner,
    StructureLearner,
    samples_of,
)
from repro.corpus.match.meta import MetaLearner
from repro.corpus.model import CorpusSchema
from repro.text import SynonymTable


def default_learners(synonyms: SynonymTable | None = None) -> list:
    """The standard four-learner ensemble."""
    return [
        NameLearner(synonyms=synonyms),
        NaiveBayesLearner(),
        FormatLearner(),
        StructureLearner(),
    ]


class LSDMatcher:
    """Train per-mediated-element classifiers; match unseen sources.

    ``mediated`` is the mediated schema; training examples are provided
    via :meth:`add_training_source` as (schema, source-path -> mediated-
    path) pairs, exactly the "first few sources mapped manually" setup.
    """

    def __init__(
        self,
        mediated: CorpusSchema,
        learners: list | None = None,
        synonyms: SynonymTable | None = None,
    ):  # noqa: D107
        self.mediated = mediated
        self.meta = MetaLearner(learners or default_learners(synonyms))
        self._samples: list[ElementSample] = []
        self._labels: list[str] = []
        self._trained = False

    def add_training_source(self, schema: CorpusSchema, mapping: dict[str, str]) -> int:
        """Add a manually mapped source; returns samples contributed.

        ``mapping`` sends source attribute paths to mediated attribute
        paths; unmapped attributes are skipped (partial mappings are
        normal).
        """
        added = 0
        for sample in samples_of(schema):
            label = mapping.get(sample.path)
            if label is None:
                continue
            self._samples.append(sample)
            self._labels.append(label)
            added += 1
        self._trained = False
        return added

    def train(self) -> None:
        """Fit the ensemble on all training sources."""
        if not self._samples:
            raise ValueError("no training sources added")
        self.meta.fit(self._samples, self._labels)
        self._trained = True

    def match_source(
        self, schema: CorpusSchema, threshold: float = 0.0, one_to_one: bool = False
    ) -> MatchResult:
        """Predict the mediated element for every attribute of ``schema``.

        Served by the ensemble's batched fast path (features computed
        once per element, precomputed learner tables) — output is
        bitwise identical to :meth:`match_source_brute_force`.
        """
        if not self._trained:
            self.train()
        samples = samples_of(schema)
        result = MatchResult()
        for sample, scores in zip(samples, self.meta.predict_batch(samples)):
            for label, score in scores.items():
                if score >= threshold:
                    result.add(sample.path, label, score)
        result = result.best_per_source() if not one_to_one else result.one_to_one()
        return result

    def match_source_brute_force(
        self, schema: CorpusSchema, threshold: float = 0.0, one_to_one: bool = False
    ) -> MatchResult:
        """The seed per-sample path (parity oracle, benchmark baseline)."""
        if not self._trained:
            self.train()
        result = MatchResult()
        for sample in samples_of(schema):
            scores = self.meta.predict_brute_force(sample)
            for label, score in scores.items():
                if score >= threshold:
                    result.add(sample.path, label, score)
        result = result.best_per_source() if not one_to_one else result.one_to_one()
        return result

    def predict_distribution(self, sample: ElementSample) -> dict[str, float]:
        """Raw ensemble distribution for one element (advisor hook)."""
        if not self._trained:
            self.train()
        return self.meta.predict(sample)
