"""Tokenization of natural-language text and schema identifiers.

Schema element names mix naming conventions (``contact-phone``,
``contactPhone``, ``CONTACT_PHONE``); :func:`tokenize_identifier` splits
all of them into the same token list, which is the first step of every
name-based statistic and matcher in :mod:`repro.corpus`.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9]+")

# Split camelCase boundaries: lower/digit followed by upper, and an upper
# followed by upper+lower (e.g. "XMLParser" -> "XML", "Parser").
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")

# Common abbreviations in schema identifiers, expanded during
# normalization so that "dept" and "department" compare equal.
DEFAULT_ABBREVIATIONS: dict[str, str] = {
    "addr": "address",
    "amt": "amount",
    "asst": "assistant",
    "bldg": "building",
    "cat": "catalog",
    "crs": "course",
    "dept": "department",
    "desc": "description",
    "dob": "birthdate",
    "email": "email",
    "fname": "firstname",
    "hr": "hour",
    "hrs": "hours",
    "instr": "instructor",
    "lname": "lastname",
    "lec": "lecture",
    "loc": "location",
    "num": "number",
    "no": "number",
    "off": "office",
    "ph": "phone",
    "prof": "professor",
    "pub": "publication",
    "qty": "quantity",
    "rm": "room",
    "sched": "schedule",
    "sec": "section",
    "sem": "semester",
    "ssn": "socialsecuritynumber",
    "tel": "telephone",
    "univ": "university",
    "yr": "year",
}


def tokenize(text: str) -> list[str]:
    """Split free text into lowercase word tokens.

    >>> tokenize("Introductory Ancient History, CSE-143!")
    ['introductory', 'ancient', 'history', 'cse', '143']
    """
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]


def tokenize_identifier(name: str, expand_abbreviations: bool = False) -> list[str]:
    """Split a schema identifier into lowercase tokens.

    Handles snake_case, kebab-case, dotted paths, camelCase and digits:

    >>> tokenize_identifier("contactPhone")
    ['contact', 'phone']
    >>> tokenize_identifier("TA_office-hours")
    ['ta', 'office', 'hours']
    >>> tokenize_identifier("dept", expand_abbreviations=True)
    ['department']
    """
    pieces: list[str] = []
    for chunk in _WORD_RE.findall(name):
        for piece in _CAMEL_RE.split(chunk):
            if piece:
                pieces.append(piece.lower())
    if expand_abbreviations:
        pieces = [DEFAULT_ABBREVIATIONS.get(piece, piece) for piece in pieces]
    return pieces


def normalize_term(name: str, expand_abbreviations: bool = True) -> str:
    """Canonical single-string form of an identifier for statistics keys.

    >>> normalize_term("Contact-Phone")
    'contact phone'
    """
    return " ".join(tokenize_identifier(name, expand_abbreviations=expand_abbreviations))
