"""The multi-strategy meta-learner (LSD's stacking combiner).

LSD combines its base learners with regression-trained weights; here the
weights are fit by non-negative least squares on a held-out fraction of
the training data (numpy ``lstsq`` + clipping, which is ample at this
scale).  If training data is too small to stack, weights fall back to
uniform.

The holdout is a **deterministic interleaved per-label split**
(:func:`stratified_holdout_indices`): the seed took the trailing
``stack_fraction`` of samples in insertion order, so the holdout was
dominated by the last-added training source and the stacking weights
were fit on an unrepresentative slice (a learner that happened to ace
that one source's vocabulary could grab all the weight).

Scale (PR 3): :meth:`MetaLearner.partial_fit` folds new training
sources in without a full refit — base learners update incrementally
(their state is additive, identical to a refit) and the stacking
weights are only marked stale; the first prediction afterwards
refreshes them in one pass over the accumulated data
(:meth:`_refresh_weights`).  ``predict_batch`` serves many samples with
features computed once and an optional candidate-label restriction;
``predict_brute_force`` combines the learners' seed per-sample paths
and is the parity oracle for the whole ensemble.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro import obs as _obs
from repro.corpus.match.learners import BaseLearner, ElementSample
from repro.runtime import SerialRuntime

_RRF_K = 1.0


def _score_learner(task):
    """One learner's batched scoring — the parallel fan-out work unit.

    Module-level (not a closure) so a :class:`~repro.runtime.
    ProcessPoolRuntime` can pickle it for CPU-bound fan-out; thread
    pools call it on the shared learner objects directly.  Returns the
    distributions plus the scoring time so the per-learner timing
    histograms can be recorded by the coordinating thread.
    """
    learner, samples, labels = task
    started = perf_counter()
    distributions = learner.predict_batch(samples, labels)
    return distributions, (perf_counter() - started) * 1000.0


def stratified_holdout_indices(labels: list[str], fraction: float) -> list[int]:
    """Deterministic interleaved per-label holdout split.

    For each label (in sorted order), its samples — in insertion order,
    i.e. in training-source order — contribute ``max(1, n * fraction)``
    holdout slots at evenly spaced positions, so every label is
    represented and no single training source dominates the holdout.
    Labels with a single sample stay in the training split.
    """
    by_label: dict[str, list[int]] = {}
    for index, label in enumerate(labels):
        by_label.setdefault(label, []).append(index)
    holdout: list[int] = []
    for label in sorted(by_label):
        indices = by_label[label]
        if len(indices) < 2:
            continue
        count = max(1, int(len(indices) * fraction))
        step = len(indices) / count
        chosen = {min(int((slot + 0.5) * step), len(indices) - 1) for slot in range(count)}
        holdout.extend(indices[position] for position in sorted(chosen))
    return sorted(holdout)


def _combine(weights, predictions, labels) -> dict[str, float]:
    """Weighted reciprocal-rank fusion of the learners' score lists.

    Base learners emit distributions on wildly different scales (naive
    Bayes is near-one-hot, name similarity is diffuse), so combining raw
    scores lets one overconfident learner veto the rest.  Rank fusion
    (``1 / (k + rank)`` per learner, weighted) is scale-free: each
    learner contributes its *ordering*, with influence set by its weight.
    """
    label_set = set(labels)
    for scores in predictions:
        label_set.update(scores)
    combined: dict[str, float] = dict.fromkeys(label_set, 0.0)
    for weight, scores in zip(weights, predictions):
        if weight == 0.0 or not scores:
            continue
        ranked = sorted(scores.items(), key=lambda item: -item[1])
        for rank, (label, _score) in enumerate(ranked, start=1):
            combined[label] += float(weight) / (_RRF_K + rank)
    total = sum(combined.values())
    if total > 0:
        combined = {label: score / total for label, score in combined.items()}
    return combined


class MetaLearner:
    """Weighted combination of base learners."""

    def __init__(
        self,
        learners: list[BaseLearner],
        stack_fraction: float = 0.33,
        obs: "_obs.Observability | None" = None,
        runtime: "SerialRuntime | None" = None,
    ):  # noqa: D107
        if not learners:
            raise ValueError("MetaLearner needs at least one base learner")
        self.learners = learners
        # Fan-out runtime for per-learner batched scoring (ISSUE 9):
        # learners are independent given frozen weights, and the work
        # unit is a picklable module-level function, so thread AND
        # process pools both apply here.
        self.runtime = runtime or SerialRuntime()
        self.stack_fraction = stack_fraction
        self.weights = np.ones(len(learners)) / len(learners)
        self.labels: list[str] = []
        self._samples: list[ElementSample] = []
        self._sample_labels: list[str] = []
        self._weights_stale = False
        # One latency histogram per base learner, keyed by class name —
        # where batched prediction time actually goes, learner by learner.
        metrics = (obs or _obs.default()).metrics
        self._learner_timers = [
            metrics.histogram(f"match.learner.{type(learner).__name__}.ms")
            for learner in learners
        ]

    # -- training -------------------------------------------------------------
    def _fit_learners(self, samples, labels) -> None:
        for learner in self.learners:
            learner.fit(samples, labels)

    def _fold_in(self, samples, labels) -> None:
        """Incrementally extend trained learners (fallback: full refit)."""
        for learner in self.learners:
            try:
                learner.partial_fit(samples, labels)
            except NotImplementedError:
                learner.fit(self._samples, self._sample_labels)

    def _stack_predictions(self, samples) -> list[list[dict[str, float]]]:
        """Per-sample lists of per-learner distributions (batched)."""
        per_learner = [learner.predict_batch(samples) for learner in self.learners]
        return [
            [predictions[index] for predictions in per_learner]
            for index in range(len(samples))
        ]

    def fit(self, samples: list[ElementSample], labels: list[str]) -> None:
        """Train base learners, then fit combination weights by stacking.

        Two weighting candidates are fit on the held-out fraction —
        non-negative least squares over the score matrix (LSD's
        regression) and per-learner holdout accuracy (robust when some
        learners emit peaked and others diffuse distributions) — and the
        one with the higher holdout accuracy wins.
        """
        self._samples = list(samples)
        self._sample_labels = list(labels)
        self.labels = sorted(set(labels))
        self._weights_stale = False
        holdout = stratified_holdout_indices(labels, self.stack_fraction)
        if (
            len(samples) <= len(self.learners)
            or not holdout
            or len(samples) - len(holdout) < 1
        ):
            self._fit_learners(samples, labels)
            self.weights = np.ones(len(self.learners)) / len(self.learners)
            return
        holdout_set = set(holdout)
        train_samples = [s for i, s in enumerate(samples) if i not in holdout_set]
        train_labels = [l for i, l in enumerate(labels) if i not in holdout_set]
        stack_samples = [samples[i] for i in holdout]
        stack_labels = [labels[i] for i in holdout]
        self._fit_learners(train_samples, train_labels)
        predictions_per_sample = self._stack_predictions(stack_samples)
        self.weights = self._select_weights(predictions_per_sample, stack_labels)
        # Complete training on the full set: the built-in learners are
        # additive, so folding the holdout in equals a full refit
        # without paying for one.
        self._fold_in(stack_samples, stack_labels)

    def partial_fit(self, samples: list[ElementSample], labels: list[str]) -> None:
        """Fold additional labeled samples in without a full refit.

        Base learners update incrementally; the stacking weights are
        only marked stale and refreshed lazily on the next prediction,
        so adding N training sources costs N incremental updates plus
        one weight fit instead of N full refits.
        """
        self._samples.extend(samples)
        self._sample_labels.extend(labels)
        self.labels = sorted(set(self.labels) | set(labels))
        self._fold_in(samples, labels)
        self._weights_stale = True

    def _refresh_weights(self) -> None:
        if not self._weights_stale:
            return
        self._weights_stale = False
        samples, labels = self._samples, self._sample_labels
        holdout = stratified_holdout_indices(labels, self.stack_fraction)
        if (
            len(samples) <= len(self.learners)
            or not holdout
            or len(samples) - len(holdout) < 1
        ):
            self.weights = np.ones(len(self.learners)) / len(self.learners)
            return
        # The learners are already trained on everything (incremental
        # adds), so the holdout was seen in training — a slightly
        # optimistic evaluation, traded for never refitting; the
        # candidate comparison is still apples-to-apples.
        stack_samples = [samples[i] for i in holdout]
        stack_labels = [labels[i] for i in holdout]
        predictions_per_sample = self._stack_predictions(stack_samples)
        self.weights = self._select_weights(predictions_per_sample, stack_labels)

    def _select_weights(self, predictions_per_sample, stack_labels) -> np.ndarray:
        """Pick the best weighting candidate on the holdout predictions."""
        # Candidate 1: least-squares regression weights.
        rows: list[list[float]] = []
        targets: list[float] = []
        for predictions, true_label in zip(predictions_per_sample, stack_labels):
            for label in self.labels:
                rows.append([p.get(label, 0.0) for p in predictions])
                targets.append(1.0 if label == true_label else 0.0)
        candidates: list[np.ndarray] = []
        matrix = np.asarray(rows)
        vector = np.asarray(targets)
        if matrix.size and np.linalg.matrix_rank(matrix) > 0:
            solution, *_ = np.linalg.lstsq(matrix, vector, rcond=None)
            solution = np.clip(solution, 0.0, None)
            if solution.sum() > 0:
                candidates.append(solution / solution.sum())

        # Candidate 2: per-learner holdout accuracy (squared to sharpen).
        accuracies = np.zeros(len(self.learners))
        for index in range(len(self.learners)):
            correct = 0
            for predictions, true_label in zip(predictions_per_sample, stack_labels):
                scores = predictions[index]
                if scores and max(scores, key=scores.get) == true_label:
                    correct += 1
            accuracies[index] = correct / max(len(stack_labels), 1)
        if accuracies.sum() > 0:
            sharpened = accuracies**2
            candidates.append(sharpened / sharpened.sum())
        candidates.append(np.ones(len(self.learners)) / len(self.learners))

        def holdout_quality(weights: np.ndarray) -> tuple[float, float]:
            """(accuracy, MRR of the true label) — MRR breaks ties."""
            correct = 0
            reciprocal_ranks = 0.0
            for predictions, true_label in zip(predictions_per_sample, stack_labels):
                combined = _combine(weights, predictions, self.labels)
                if not combined:
                    continue
                ranked = sorted(combined.items(), key=lambda item: -item[1])
                if ranked[0][0] == true_label:
                    correct += 1
                for rank, (label, _score) in enumerate(ranked, start=1):
                    if label == true_label:
                        reciprocal_ranks += 1.0 / rank
                        break
            count = max(len(stack_labels), 1)
            return (correct / count, reciprocal_ranks / count)

        return max(candidates, key=holdout_quality)

    def freeze_weights(self) -> None:
        """Refresh stale stacking weights now, on the calling thread.

        Fan-out call sites (``match_corpus``) invoke this before
        handing samples to worker threads so every worker predicts
        against identical, already-refreshed learner state instead of
        racing the lazy refresh.
        """
        self._refresh_weights()

    # -- prediction -----------------------------------------------------------
    def predict(self, sample: ElementSample) -> dict[str, float]:
        """Rank-fused combination of the base learners (fast paths)."""
        self._refresh_weights()
        predictions = [learner.predict(sample) for learner in self.learners]
        return _combine(self.weights, predictions, self.labels)

    def predict_batch(
        self, samples: list[ElementSample], labels: set | None = None
    ) -> list[dict[str, float]]:
        """Distributions for many samples at once.

        Element features are computed once per sample and shared across
        learners (the :class:`ElementSample` feature memo); ``labels``
        restricts scoring to a candidate subset (the pipeline's
        blocking).  With ``labels=None`` the output is bitwise
        identical to per-sample :meth:`predict`.

        With a concurrent runtime the learners are scored on the
        worker pool — each learner's output depends only on its own
        trained state, so the combined distributions are identical to
        the serial order (``tests/test_runtime.py`` pins it bitwise).
        Weights are refreshed *before* the fan-out, on the calling
        thread, so workers see frozen learner state.
        """
        self._refresh_weights()
        per_learner = []
        if self.runtime.concurrent and len(self.learners) > 1:
            tasks = [(learner, samples, labels) for learner in self.learners]
            for (distributions, ms), timer in zip(
                self.runtime.map(_score_learner, tasks), self._learner_timers
            ):
                per_learner.append(distributions)
                timer.observe(ms)
        else:
            for learner, timer in zip(self.learners, self._learner_timers):
                started = perf_counter()
                per_learner.append(learner.predict_batch(samples, labels))
                timer.observe((perf_counter() - started) * 1000.0)
        if labels is None:
            combine_labels = self.labels
        else:
            combine_labels = [label for label in self.labels if label in labels]
        return [
            _combine(
                self.weights,
                [predictions[index] for predictions in per_learner],
                combine_labels,
            )
            for index in range(len(samples))
        ]

    def predict_brute_force(self, sample: ElementSample) -> dict[str, float]:
        """The seed per-sample path: every learner's unmemoized,
        per-label-loop scoring (parity oracle and benchmark baseline)."""
        self._refresh_weights()
        predictions = [learner.predict_brute_force(sample) for learner in self.learners]
        return _combine(self.weights, predictions, self.labels)

    def predict_vector(self, sample: ElementSample) -> np.ndarray:
        """Prediction as a dense vector over ``self.labels`` (for the
        MATCHINGADVISOR correlation method)."""
        scores = self.predict(sample)
        return np.asarray([scores.get(label, 0.0) for label in self.labels])

    def predict_vector_batch(self, samples: list[ElementSample]) -> list[np.ndarray]:
        """Dense prediction vectors for many samples (batched)."""
        return [
            np.asarray([scores.get(label, 0.0) for label in self.labels])
            for scores in self.predict_batch(samples)
        ]
