"""Experiment C7 — DESIGNADVISOR retrieval quality and the alpha/beta sweep.

The advisor ranks corpus schemas by ``sim = alpha*fit + beta*pref``.
The harness builds a mixed-domain corpus (university, people,
publications — all perturbed), takes fragments from known domains, and
measures whether the advisor retrieves a schema of the right domain
(hit@1, hit@3, MRR), across alpha/beta settings.  Expected shape:
fit-dominated rankings retrieve the right family; preference-only
ranking (alpha=0) collapses, showing the fit term carries the signal.
"""

import pytest

from repro.bench import ResultTable, mean
from repro.corpus import Corpus, CorpusSchema, DesignAdvisor
from repro.datasets.people import people_schema_instance
from repro.datasets.perturb import PerturbationConfig, perturb_schema
from repro.datasets.publications import publications_schema_instance
from repro.datasets.university import university_schema_instance


def mixed_corpus(variants_per_domain: int = 4, seed: int = 9) -> Corpus:
    corpus = Corpus()
    references = {
        "university": university_schema_instance(seed=seed, courses=10),
        "people": people_schema_instance(seed=seed, persons=15),
        "publications": publications_schema_instance(seed=seed, papers=15),
    }
    for domain, reference in references.items():
        for index in range(variants_per_domain):
            variant, _gold = perturb_schema(
                reference,
                f"{domain}-{index}",
                seed=seed * 100 + index,
                config=PerturbationConfig(rename_probability=0.3),
            )
            variant.domain = domain
            corpus.add_schema(variant)
    return corpus


def fragments(seed: int = 33):
    """Fragments with known home domains (perturbed, partial, with data)."""
    university = university_schema_instance(seed=seed, courses=8)
    people = people_schema_instance(seed=seed, persons=10)
    publications = publications_schema_instance(seed=seed, papers=10)
    found = []
    for domain, reference, relations in (
        ("university", university, ("course", "ta")),
        ("people", people, ("person", "interest")),
        ("publications", publications, ("paper", "author")),
    ):
        variant, gold = perturb_schema(
            reference,
            f"frag-{domain}",
            seed=seed,
            config=PerturbationConfig(rename_probability=0.4),
        )
        fragment = CorpusSchema(f"fragment-{domain}")
        # A genuinely partial draft: the domain's characteristic relations,
        # first few attributes, a handful of rows.
        for relation in relations:
            new_relation = gold[relation]
            attributes = variant.relations[new_relation]
            fragment.add_relation(
                new_relation,
                attributes[:4],
                [row[:4] for row in variant.data.get(new_relation, [])[:10]],
            )
        found.append((domain, fragment))
    return found


def retrieval_quality(advisor: DesignAdvisor, probes) -> dict[str, float]:
    hits1, hits3, reciprocal_ranks = [], [], []
    for domain, fragment in probes:
        proposals = advisor.propose(fragment, limit=10)
        domains = [p.schema.domain for p in proposals]
        hits1.append(1.0 if domains[:1] == [domain] else 0.0)
        hits3.append(1.0 if domain in domains[:3] else 0.0)
        rank = domains.index(domain) + 1 if domain in domains else None
        reciprocal_ranks.append(1.0 / rank if rank else 0.0)
    return {"hit@1": mean(hits1), "hit@3": mean(hits3), "mrr": mean(reciprocal_ranks)}


class TestC7DesignAdvisor:
    @pytest.fixture(scope="class")
    def corpus(self):
        return mixed_corpus()

    def test_alpha_beta_sweep(self, corpus, benchmark):
        probes = fragments()
        table = ResultTable(
            "C7: DESIGNADVISOR retrieval quality, alpha/beta and fit-mode sweep",
            ["fit mode", "alpha", "beta", "hit@1", "hit@3", "MRR"],
        )
        results = {}
        for fit_mode in ("coverage", "paper"):
            for alpha, beta in ((1.0, 0.0), (0.7, 0.3), (0.3, 0.7), (0.0, 1.0)):
                advisor = DesignAdvisor(corpus, alpha=alpha, beta=beta, fit_mode=fit_mode)
                quality = retrieval_quality(advisor, probes)
                results[(fit_mode, alpha, beta)] = quality
                table.add_row(
                    fit_mode, alpha, beta,
                    quality["hit@1"], quality["hit@3"], quality["mrr"],
                )
        table.note(
            "reproduction finding: the paper's symmetric fit ratio penalizes "
            "complete (larger) schemas, so a small wrong-domain look-alike can "
            "outrank the right domain's full schema; coverage-based fit "
            "retrieves the fragment's family reliably. preference alone "
            "(alpha=0) cannot identify the domain in either mode."
        )
        table.show()
        assert results[("coverage", 1.0, 0.0)]["hit@1"] == 1.0
        assert results[("coverage", 0.7, 0.3)]["hit@1"] == 1.0
        for fit_mode in ("coverage", "paper"):
            assert (
                results[(fit_mode, 0.0, 1.0)]["mrr"]
                <= results[(fit_mode, 1.0, 0.0)]["mrr"]
            )
        # The finding itself: paper-mode fit ranks strictly worse here.
        assert (
            results[("paper", 1.0, 0.0)]["mrr"]
            <= results[("coverage", 1.0, 0.0)]["mrr"]
        )
        advisor = DesignAdvisor(corpus, alpha=0.7, beta=0.3)
        _domain, fragment = probes[0]
        benchmark(advisor.propose, fragment, 5)

    def test_proposals_come_with_usable_mappings(self, corpus):
        advisor = DesignAdvisor(corpus)
        _domain, fragment = fragments()[0]
        top = advisor.propose(fragment, limit=1)[0]
        # The mapping of S into S' the paper requires for each proposal:
        assert len(top.mapping) > 0
        source_paths = {e.path for e in fragment.elements()}
        assert all(c.source in source_paths for c in top.mapping)
