"""The in-place annotation language.

Annotations are embedded in the HTML itself as comment markers::

    <!--mg:begin id=1 tag=course.title-->Ancient History<!--mg:end id=1-->

which "ensures backward compatibility with existing web pages and
eliminates inconsistency problems arising from having multiple copies of
the same data" (Section 2.1).  The language is "syntactic sugar for
basic RDF": extraction turns a page's annotations into triples with the
page URL as provenance.

Entity/property structure: an annotation whose tag is an *entity* in
the schema (e.g. ``course``) introduces a subject node
``url#course-K``; property annotations nested inside it become triples
``(url#course-K, course.title, "Ancient History")``.  Property
annotations outside any entity attach to the page itself (subject =
url) — the common case for a personal home page.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.mangrove.schema import LightweightSchema
from repro.rdf import Triple

_BEGIN_RE = re.compile(r"<!--mg:begin id=(\d+) tag=([\w.]+)-->")
_END_RE = re.compile(r"<!--mg:end id=(\d+)-->")
_ANY_MARKER_RE = re.compile(r"<!--mg:(?:begin id=\d+ tag=[\w.]+|end id=\d+)-->")
_TAG_STRIP_RE = re.compile(r"<[^>]*>")


class AnnotationError(ValueError):
    """Invalid span, unknown tag, or malformed markers."""


@dataclass(frozen=True)
class Annotation:
    """One extracted annotation: a tag over a text span."""

    id: int
    tag_path: str
    text: str
    parent_id: int | None = None


@dataclass
class AnnotatedDocument:
    """An HTML page plus its embedded annotations.

    The document's ``html`` always contains the markers, so the page
    remains the single copy of the data; re-publishing re-extracts.
    """

    url: str
    html: str
    schema: LightweightSchema | None = None
    _next_id: int = field(default=1, repr=False)

    # -- authoring --------------------------------------------------------
    def rendered_text(self) -> str:
        """The page as a browser shows it: markup and markers stripped."""
        return _TAG_STRIP_RE.sub("", _ANY_MARKER_RE.sub("", self.html))

    def annotate_span(self, start: int, end: int, tag_path: str) -> int:
        """Annotate ``html[start:end]`` with ``tag_path``; returns the id.

        Offsets are into the *current* html string.  The span must not
        split existing markers or HTML tags.
        """
        if not 0 <= start < end <= len(self.html):
            raise AnnotationError(f"bad span [{start}:{end}) for {self.url}")
        if self.schema is not None and not self.schema.is_valid_path(tag_path):
            raise AnnotationError(
                f"tag {tag_path!r} is not in schema {self.schema.name!r}"
            )
        span = self.html[start:end]
        if _count_unbalanced(span):
            raise AnnotationError("span would split existing markers or tags")
        annotation_id = self._next_id
        self._next_id += 1
        begin = f"<!--mg:begin id={annotation_id} tag={tag_path}-->"
        end_marker = f"<!--mg:end id={annotation_id}-->"
        self.html = self.html[:start] + begin + span + end_marker + self.html[end:]
        return annotation_id

    def annotate_text(self, needle: str, tag_path: str, occurrence: int = 1) -> int:
        """Annotate the ``occurrence``-th occurrence of ``needle``.

        This models the GUI flow: the user highlights visible text.
        """
        position = -1
        for _ in range(occurrence):
            position = self.html.find(needle, position + 1)
            if position == -1:
                raise AnnotationError(
                    f"text {needle!r} (occurrence {occurrence}) not in {self.url}"
                )
        return self.annotate_span(position, position + len(needle), tag_path)

    def remove_annotation(self, annotation_id: int) -> bool:
        """Strip one annotation's markers (the data stays)."""
        begin = re.compile(rf"<!--mg:begin id={annotation_id} tag=[\w.]+-->")
        end = rf"<!--mg:end id={annotation_id}-->"
        if not begin.search(self.html):
            return False
        self.html = begin.sub("", self.html)
        self.html = self.html.replace(end, "")
        return True

    # -- extraction --------------------------------------------------------
    def annotations(self) -> list[Annotation]:
        """Parse the markers back out, with nesting (parent ids)."""
        events: list[tuple[int, str, int, str | None]] = []
        for match in _BEGIN_RE.finditer(self.html):
            events.append((match.start(), "begin", int(match.group(1)), match.group(2)))
        for match in _END_RE.finditer(self.html):
            events.append((match.start(), "end", int(match.group(1)), None))
        events.sort(key=lambda event: event[0])
        stack: list[tuple[int, str, int]] = []  # (id, tag, content_start)
        collected: dict[int, Annotation] = {}
        for position, kind, annotation_id, tag_path in events:
            if kind == "begin":
                assert tag_path is not None
                marker_len = len(f"<!--mg:begin id={annotation_id} tag={tag_path}-->")
                stack.append((annotation_id, tag_path, position + marker_len))
            else:
                if not stack or stack[-1][0] != annotation_id:
                    raise AnnotationError(
                        f"mismatched annotation markers in {self.url} (id={annotation_id})"
                    )
                open_id, tag_path, content_start = stack.pop()
                raw = self.html[content_start:position]
                text = _TAG_STRIP_RE.sub("", _ANY_MARKER_RE.sub("", raw)).strip()
                parent_id = stack[-1][0] if stack else None
                collected[open_id] = Annotation(open_id, tag_path, text, parent_id)
        if stack:
            raise AnnotationError(f"unclosed annotation markers in {self.url}")
        return [collected[key] for key in sorted(collected)]

    def to_triples(self) -> list[Triple]:
        """Extract RDF-style triples (the publish payload).

        Entity annotations become subjects ``url#tag-N``; property
        annotations become triples on their nearest entity ancestor (or
        the page itself).  Entity annotations also get an ``rdf:type``
        triple so applications can find all instances.
        """
        annotations = self.annotations()
        by_id = {annotation.id: annotation for annotation in annotations}
        entity_counter: dict[str, int] = {}
        subjects: dict[int, str] = {}
        triples: list[Triple] = []

        def is_entity(annotation: Annotation) -> bool:
            if self.schema is not None:
                return self.schema.is_entity_path(annotation.tag_path)
            return any(a.parent_id == annotation.id for a in annotations)

        for annotation in annotations:
            if is_entity(annotation):
                count = entity_counter.get(annotation.tag_path, 0) + 1
                entity_counter[annotation.tag_path] = count
                subject = f"{self.url}#{annotation.tag_path}-{count}"
                subjects[annotation.id] = subject
                triples.append(Triple(subject, "rdf:type", annotation.tag_path, self.url))

        def owner_subject(annotation: Annotation) -> str:
            parent = annotation.parent_id
            while parent is not None:
                if parent in subjects:
                    return subjects[parent]
                parent = by_id[parent].parent_id
            return self.url

        for annotation in annotations:
            if annotation.id in subjects:
                continue
            triples.append(
                Triple(
                    owner_subject(annotation),
                    annotation.tag_path,
                    annotation.text,
                    self.url,
                )
            )
        return triples


def _count_unbalanced(span: str) -> bool:
    """True if the span cuts through a comment marker or an HTML tag."""
    if span.count("<") != span.count(">"):
        return True
    begins = len(_BEGIN_RE.findall(span))
    ends = len(_END_RE.findall(span))
    return begins != ends
