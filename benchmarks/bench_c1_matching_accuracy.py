"""Experiment C1 — the LSD claim: matching accuracy "in the 70%-90% range".

Two sub-experiments:

1. **LSD workflow** (the cited result): train the multi-strategy
   ensemble on sources manually mapped to a mediated schema, predict
   mappings for unseen sources; report accuracy per base learner alone
   and for the meta-learner (the learner ablation of DESIGN.md §5).
2. **Matcher shoot-out**: direct matchers (edit distance, Jaccard,
   COMA-like, hybrid) and the corpus-based MATCHINGADVISOR across
   perturbation levels.

Expected shape: the multi-strategy ensemble lands in the paper's 70-90%
band on moderately perturbed schemas and beats every single-strategy
baseline.
"""

import pytest

from repro.bench import ResultTable, mean
from repro.corpus.match import (
    ComaLikeMatcher,
    EditDistanceMatcher,
    HybridMatcher,
    JaccardTokenMatcher,
    LSDMatcher,
    MatchingAdvisor,
    accuracy,
    evaluate_matching,
)
from repro.corpus.match.learners import (
    FormatLearner,
    NaiveBayesLearner,
    NameLearner,
    StructureLearner,
)
from repro.corpus.model import CorpusSchema
from repro.datasets.perturb import PerturbationConfig, matching_pair, perturb_schema
from repro.datasets.university import make_university_corpus, university_schema_instance
from repro.text import default_synonyms


def full_source(seed: int, level: float, translate: bool = False):
    """A perturbed full university source + its mapping to the mediated
    schema.  ``translate=True`` renames into Italian vocabulary (the
    Rome scenario), which the learners' synonym table does not cover."""
    from repro.text.synonyms import italian_english_dictionary

    reference = university_schema_instance("ref", seed=seed, courses=25)
    config = PerturbationConfig(
        rename_probability=level,
        use_synonyms=not translate,
        use_abbreviations=not translate,
        translation=italian_english_dictionary() if translate else None,
    )
    variant, gold = perturb_schema(reference, f"src{seed}", seed=seed, config=config)
    mapping = {new: old for old, new in gold.items() if "." in old}
    return variant, mapping


def lsd_accuracy(learners, trials=3, hard: bool = False) -> float:
    """Train on three mapped sources, test a fourth.

    ``hard``: training sources use English synonym/abbreviation renames,
    the test source uses Italian vocabulary — the name learner's nearest
    neighbours cover nothing, so the ensemble must lean on data values
    and formats.
    """
    scores = []
    for trial in range(trials):
        mediated = university_schema_instance("mediated", seed=0, courses=0)
        lsd = LSDMatcher(mediated, learners=learners(), synonyms=default_synonyms())
        for seed in (trial * 10 + 1, trial * 10 + 2, trial * 10 + 3):
            source, gold = full_source(seed, 0.5, translate=False)
            lsd.add_training_source(source, gold)
        test_source, test_gold = full_source(
            trial * 10 + 7, 0.9 if hard else 0.5, translate=hard
        )
        result = lsd.match_source(test_source)
        scores.append(accuracy(result, test_gold))
    return mean(scores)


class TestC1LsdAccuracy:
    def test_learner_ablation(self, benchmark):
        table = ResultTable(
            "C1a: LSD workflow accuracy, per learner and multi-strategy",
            ["learner", "same vocabulary", "cross vocabulary (Italian test)"],
        )
        configurations = {
            "name only": lambda: [NameLearner(synonyms=default_synonyms())],
            "naive bayes only": lambda: [NaiveBayesLearner()],
            "format only": lambda: [FormatLearner()],
            "structure only": lambda: [StructureLearner()],
            "multi-strategy (all)": lambda: [
                NameLearner(synonyms=default_synonyms()),
                NaiveBayesLearner(),
                FormatLearner(),
                StructureLearner(),
            ],
        }
        easy, hard = {}, {}
        for label, learners in configurations.items():
            easy[label] = lsd_accuracy(learners, hard=False)
            hard[label] = lsd_accuracy(learners, hard=True)
            table.add_row(label, easy[label], hard[label])
        table.note(
            "paper claim (Section 4.3.2): LSD matching accuracies in the "
            "70%-90% range.  The multi-strategy ensemble reaches that band on "
            "the hard cross-vocabulary sources and is never worse than its "
            "best component."
        )
        table.show()
        # The headline claim: multi-strategy accuracy in (or above) 70-90%.
        assert hard["multi-strategy (all)"] >= 0.7
        assert easy["multi-strategy (all)"] >= 0.9
        # ... and at least as good as every single strategy.
        for scores in (easy, hard):
            singles = [v for k, v in scores.items() if k != "multi-strategy (all)"]
            assert scores["multi-strategy (all)"] >= max(singles) - 0.05
        benchmark(lsd_accuracy, configurations["multi-strategy (all)"], 1)


class TestC1MatcherShootout:
    @pytest.fixture(scope="class")
    def corpus(self):
        return make_university_corpus(count=6, seed=21, courses=10)

    def test_matchers_across_perturbation_levels(self, corpus, benchmark):
        synonyms = default_synonyms()
        matchers = {
            "edit-distance": EditDistanceMatcher(),
            "jaccard-tokens": JaccardTokenMatcher(),
            "coma-like": ComaLikeMatcher(synonyms=synonyms),
            "hybrid": HybridMatcher(synonyms=synonyms),
        }
        advisor = MatchingAdvisor(corpus, synonyms=synonyms)
        table = ResultTable(
            "C1b: matcher accuracy by perturbation level (university domain)",
            ["matcher"] + [f"level={level}" for level in (0.2, 0.4, 0.6)],
        )
        reference = university_schema_instance(seed=31, courses=15)
        per_matcher: dict[str, list[float]] = {name: [] for name in matchers}
        per_matcher["matching-advisor"] = []
        for level in (0.2, 0.4, 0.6):
            left, right, gold = matching_pair(reference, seed=31, level=level)
            for name, matcher in matchers.items():
                result = matcher.match(left, right)
                per_matcher[name].append(accuracy(result, gold))
            result = advisor.match_by_correlation(left, right)
            per_matcher["matching-advisor"].append(accuracy(result, gold))
        for name, values in per_matcher.items():
            table.add_row(name, *values)
        table.note(
            "shape check: learned/corpus matchers degrade gracefully with "
            "perturbation; single-signal string baselines fall off fastest."
        )
        table.show()
        # Shape assertions: at high perturbation the hybrid/advisor beat
        # plain edit distance.
        assert per_matcher["hybrid"][-1] >= per_matcher["edit-distance"][-1]
        assert per_matcher["matching-advisor"][-1] >= per_matcher["edit-distance"][-1]
        left, right, gold = matching_pair(reference, seed=31, level=0.4)
        benchmark(matchers["hybrid"].match, left, right)
