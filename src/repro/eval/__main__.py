"""``python -m repro.eval`` — the IR eval harness CLI.

Thin wrapper so the CLI entry point doesn't re-execute the harness
module under ``runpy`` (``python -m repro.eval.harness`` works too but
warns, because the package ``__init__`` already imported it).
"""

import sys

from repro.eval.harness import main

sys.exit(main())
