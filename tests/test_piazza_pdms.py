"""PDMS tests: mappings, reformulation over transitive closure, soundness."""

import pytest

from repro.piazza import PDMS
from repro.piazza.peer import PdmsError, owner_of, peer_relation, stored_relation


def build_two_peer_system() -> PDMS:
    """uw --(mapping)--> mit; both store course data locally."""
    pdms = PDMS()
    uw = pdms.add_peer("uw")
    uw.add_relation("course", ["id", "title", "size"])
    uw.add_stored("courses", ["id", "title", "size"])
    uw.insert("courses", [(1, "Databases", 100), (2, "History", 50)])
    pdms.add_storage("uw", "courses", "uw.course")

    mit = pdms.add_peer("mit")
    mit.add_relation("subject", ["code", "name", "enrollment"])
    mit.add_stored("subjects", ["code", "name", "enrollment"])
    mit.insert("subjects", [(9, "Algorithms", 200)])
    pdms.add_storage("mit", "subjects", "mit.subject")

    # Every uw course is an mit subject (inclusion GLAV mapping).
    pdms.add_mapping(
        "uw2mit",
        "m(I, T, S) :- uw.course(I, T, S)",
        "m(I, T, S) :- mit.subject(I, T, S)",
    )
    return pdms


class TestQualifiedNames:
    def test_owner_of(self):
        assert owner_of("uw.course") == "uw"
        assert owner_of("uw!courses") == "uw"
        with pytest.raises(PdmsError):
            owner_of("plain")

    def test_constructors(self):
        assert peer_relation("uw", "course") == "uw.course"
        assert stored_relation("uw", "courses") == "uw!courses"


class TestLocalAnswering:
    def test_local_query(self):
        pdms = build_two_peer_system()
        answers = pdms.answer("q(T) :- uw.course(I, T, S)")
        assert answers == {("Databases",), ("History",)}

    def test_unknown_peer_relation_yields_empty(self):
        pdms = build_two_peer_system()
        assert pdms.answer("q(X) :- uw.nothing(X)") == set()

    def test_storage_requires_known_relation(self):
        pdms = PDMS()
        peer = pdms.add_peer("p")
        with pytest.raises(PdmsError):
            pdms.add_storage("p", "ghost", "p.rel")


class TestCrossPeerAnswering:
    def test_mapping_direction(self):
        pdms = build_two_peer_system()
        # Querying MIT's schema must see UW data (uw.course ⊆ mit.subject).
        answers = pdms.answer("q(N) :- mit.subject(C, N, E)")
        assert answers == {("Databases",), ("History",), ("Algorithms",)}

    def test_inclusion_is_directional(self):
        pdms = build_two_peer_system()
        # The inclusion does NOT let UW queries see MIT data.
        answers = pdms.answer("q(T) :- uw.course(I, T, S)")
        assert ("Algorithms",) not in answers

    def test_equality_mapping_is_bidirectional(self):
        pdms = build_two_peer_system()
        pdms.add_mapping(
            "uw2mit_eq",
            "m(I, T, S) :- uw.course(I, T, S)",
            "m(I, T, S) :- mit.subject(I, T, S)",
            exact=True,
        )
        answers = pdms.answer("q(T) :- uw.course(I, T, S)")
        assert ("Algorithms",) in answers

    def test_answers_match_certain_answers(self):
        pdms = build_two_peer_system()
        for query in [
            "q(N) :- mit.subject(C, N, E)",
            "q(T) :- uw.course(I, T, S)",
            "q(C, E) :- mit.subject(C, N, E)",
        ]:
            assert pdms.answer(query) == pdms.certain(query)


class TestTransitiveClosure:
    def chain(self, length: int) -> PDMS:
        """p0 -> p1 -> ... -> p_{length-1}, data only at p0."""
        pdms = PDMS()
        for i in range(length):
            peer = pdms.add_peer(f"p{i}")
            peer.add_relation("r", ["a", "b"])
            peer.add_stored("s", ["a", "b"])
            pdms.add_storage(f"p{i}", "s", f"p{i}.r")
        pdms.peers["p0"].insert("s", [("x", "y")])
        for i in range(length - 1):
            pdms.add_mapping(
                f"m{i}",
                f"m(A, B) :- p{i}.r(A, B)",
                f"m(A, B) :- p{i + 1}.r(A, B)",
            )
        return pdms

    def test_data_flows_along_chain(self):
        pdms = self.chain(5)
        answers = pdms.answer("q(A, B) :- p4.r(A, B)", max_depth=32)
        assert answers == {("x", "y")}

    def test_no_flow_against_inclusion_direction(self):
        pdms = self.chain(3)
        pdms.peers["p2"].insert("s", [("u", "v")])
        answers = pdms.answer("q(A, B) :- p0.r(A, B)")
        assert answers == {("x", "y")}

    def test_reachability_matches_graph(self):
        pdms = self.chain(4)
        assert pdms.reachable_from("p0") == {"p0", "p1", "p2", "p3"}

    def test_mapping_count_linear(self):
        pdms = self.chain(6)
        assert pdms.mapping_count() == 5


class TestJoinMappings:
    def test_mapping_with_join_and_existential(self):
        """Figure-3 style: Berkeley nests dept/course; MIT flattens.

        berkeley.dept(did, dname) + berkeley.course(did, title, size)
          ⊆ mit.course(dname) / mit.subject(dname, title, size)
        The mapping head exposes (dname, title, size); MIT's subject key
        is existential on the Berkeley side.
        """
        pdms = PDMS()
        berkeley = pdms.add_peer("berkeley")
        berkeley.add_relation("dept", ["did", "dname"])
        berkeley.add_relation("course", ["did", "title", "size"])
        berkeley.add_stored("depts", ["did", "dname"])
        berkeley.add_stored("courses", ["did", "title", "size"])
        pdms.add_storage("berkeley", "depts", "berkeley.dept")
        pdms.add_storage("berkeley", "courses", "berkeley.course")
        berkeley.insert("depts", [(1, "EECS"), (2, "CivE")])
        berkeley.insert(
            "courses", [(1, "Databases", 100), (1, "OS", 80), (2, "Statics", 60)]
        )

        mit = pdms.add_peer("mit")
        mit.add_relation("course", ["name"])
        mit.add_relation("subject", ["course_name", "title", "enrollment"])

        pdms.add_mapping(
            "b2m",
            "m(N, T, S) :- berkeley.dept(D, N), berkeley.course(D, T, S)",
            "m(N, T, S) :- mit.course(N), mit.subject(N, T, S)",
        )

        # Query MIT's nested view: join course & subject back together.
        answers = pdms.answer(
            "q(N, T) :- mit.course(N), mit.subject(N, T, E)"
        )
        assert answers == {
            ("EECS", "Databases"),
            ("EECS", "OS"),
            ("CivE", "Statics"),
        }
        assert answers == pdms.certain("q(N, T) :- mit.course(N), mit.subject(N, T, E)")

    def test_existential_alone_not_returned(self):
        """A query asking only for the existential-heavy atom still works
        but skolem-only columns cannot be returned as certain answers."""
        pdms = PDMS()
        a = pdms.add_peer("a")
        a.add_relation("r", ["x"])
        a.add_stored("s", ["x"])
        pdms.add_storage("a", "s", "a.r")
        a.insert("s", [("v1",)])
        b = pdms.add_peer("b")
        b.add_relation("pair", ["x", "hidden"])
        pdms.add_mapping(
            "a2b",
            "m(X) :- a.r(X)",
            "m(X) :- b.pair(X, H)",
        )
        # Asking for the hidden column: no certain answer exists.
        assert pdms.answer("q(H) :- b.pair(X, H)") == set()
        assert pdms.certain("q(H) :- b.pair(X, H)") == set()
        # Asking for the visible column works.
        assert pdms.answer("q(X) :- b.pair(X, H)") == {("v1",)}


class TestDefinitionalMappings:
    def test_gav_unfolding(self):
        pdms = PDMS()
        hub = pdms.add_peer("hub")
        hub.add_relation("all_courses", ["title"])
        for name in ("x", "y"):
            peer = pdms.add_peer(name)
            peer.add_relation("course", ["title"])
            peer.add_stored("c", ["title"])
            pdms.add_storage(name, "c", f"{name}.course")
        pdms.peers["x"].insert("c", [("DB",)])
        pdms.peers["y"].insert("c", [("OS",)])
        pdms.add_definition("hub_x", "hub.all_courses(T) :- x.course(T)")
        pdms.add_definition("hub_y", "hub.all_courses(T) :- y.course(T)")
        assert pdms.answer("q(T) :- hub.all_courses(T)") == {("DB",), ("OS",)}


class TestCyclicMappings:
    def test_cycle_terminates_and_is_sound(self):
        pdms = PDMS()
        for name in ("a", "b"):
            peer = pdms.add_peer(name)
            peer.add_relation("r", ["x"])
            peer.add_stored("s", ["x"])
            pdms.add_storage(name, "s", f"{name}.r")
        pdms.peers["a"].insert("s", [("1",)])
        pdms.peers["b"].insert("s", [("2",)])
        pdms.add_mapping("ab", "m(X) :- a.r(X)", "m(X) :- b.r(X)", exact=True)
        answers = pdms.answer("q(X) :- a.r(X)")
        assert answers == {("1",), ("2",)}
        assert answers == pdms.certain("q(X) :- a.r(X)")
