"""XML data model: trees, a DTD subset, path expressions and mappings.

Piazza "assumes an XML data model, since this is general enough to
encompass relational, hierarchical, or semi-structured data" (Section
3.1).  Figure 3 gives peer schemas as DTD-style declarations and Figure
4 gives a template mapping language with brace-delimited query
annotations; this package implements both.
"""

from repro.xmlmodel.tree import XmlElement, XmlText, element, text
from repro.xmlmodel.parser import parse_xml, XmlParseError
from repro.xmlmodel.dtd import Dtd, ElementDecl, DtdError, parse_dtd
from repro.xmlmodel.path import PathExpr, parse_path
from repro.xmlmodel.mapping import TemplateMapping, MappingError

__all__ = [
    "Dtd",
    "DtdError",
    "ElementDecl",
    "MappingError",
    "PathExpr",
    "TemplateMapping",
    "XmlElement",
    "XmlParseError",
    "XmlText",
    "element",
    "parse_dtd",
    "parse_path",
    "parse_xml",
    "text",
]
