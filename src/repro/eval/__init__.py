"""Golden-query IR evaluation for the corpus search subsystem.

Until this package existed, every assertion about the search layer was
a *parity* check against brute force — rankings were provably fast and
provably frozen, never provably *good*.  The harness here turns
matching/advisor retrieval quality into a measured, regression-gated
axis, the way the ``bench_c*`` suite already gates throughput:

* :mod:`repro.eval.metrics` — MRR, nDCG@k, P@k and their aggregation;
* :mod:`repro.eval.golden` — golden query sets generated from the
  :func:`~repro.datasets.pdms_gen.synthetic_schema_corpus` ground
  truth (domain membership = relevance), with a clean and a
  perturbed-vocabulary split;
* :mod:`repro.eval.harness` — runs every retrieval strategy of
  :meth:`~repro.search.engine.CorpusSearchEngine.search_schemas` over
  a golden set, scores it, and checks the result against the committed
  baseline (``benchmarks/baselines/ir_quality.json``) — the blocking
  ``ir-regression-gate`` CI job and ``benchmarks/bench_c16_ir_quality
  .py`` both drive it.
"""

from repro.eval.golden import GoldenQuery, GoldenQuerySet, generate_golden_set
from repro.eval.harness import EvalConfig, QUICK_CONFIG, compare_to_baseline, run_ir_eval
from repro.eval.metrics import mean_metrics, mrr, ndcg_at_k, precision_at_k

__all__ = [
    "EvalConfig",
    "GoldenQuery",
    "GoldenQuerySet",
    "QUICK_CONFIG",
    "compare_to_baseline",
    "generate_golden_set",
    "mean_metrics",
    "mrr",
    "ndcg_at_k",
    "precision_at_k",
    "run_ir_eval",
]
