"""Shared vocabulary pools for the domain generators (seeded sampling)."""

from __future__ import annotations

import random

FIRST_NAMES = [
    "Alice", "Bob", "Carol", "David", "Elena", "Frank", "Grace", "Hiro",
    "Ivan", "Julia", "Karim", "Lena", "Marco", "Nina", "Omar", "Paula",
    "Quinn", "Rosa", "Sam", "Tara", "Uri", "Vera", "Wei", "Xena", "Yuki", "Zoe",
]

LAST_NAMES = [
    "Smith", "Jones", "Garcia", "Chen", "Kumar", "Rossi", "Novak", "Kim",
    "Tanaka", "Okafor", "Silva", "Mueller", "Dubois", "Ivanov", "Haddad",
    "Larsen", "Costa", "Nguyen", "Papas", "Weber",
]

SUBJECTS = [
    "Ancient History", "Databases", "Operating Systems", "Linear Algebra",
    "Organic Chemistry", "Microeconomics", "Machine Learning", "Compilers",
    "Thermodynamics", "Art History", "Number Theory", "Genetics",
    "Distributed Systems", "Philosophy of Mind", "Statistics",
    "Computer Networks", "Quantum Mechanics", "Medieval Literature",
]

LEVELS = ["Introductory", "Intermediate", "Advanced", "Graduate Seminar in"]

DEPARTMENTS = [
    "Computer Science", "History", "Mathematics", "Chemistry", "Economics",
    "Physics", "Biology", "Philosophy", "Literature", "Statistics",
]

BUILDINGS = ["Gates", "Sieg", "Allen", "Loew", "Savery", "Bagley", "Denny"]

DAYS = ["MWF", "TTh", "MW", "F", "Daily"]

VENUES = ["SIGMOD", "VLDB", "CIDR", "ICDE", "WWW", "AAAI", "SOSP", "OSDI"]

POSITIONS = ["Professor", "Associate Professor", "Assistant Professor",
             "Lecturer", "Research Scientist", "Postdoc"]


def person_name(rng: random.Random) -> str:
    """A random full name."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def course_title(rng: random.Random) -> str:
    """A random course title like 'Advanced Databases'."""
    return f"{rng.choice(LEVELS)} {rng.choice(SUBJECTS)}"


def course_time(rng: random.Random) -> str:
    """A random meeting time like 'MWF 10:30'."""
    hour = rng.randint(8, 17)
    minute = rng.choice(["00", "30"])
    return f"{rng.choice(DAYS)} {hour}:{minute}"

def room(rng: random.Random) -> str:
    """A random room like 'Gates 271'."""
    return f"{rng.choice(BUILDINGS)} {rng.randint(100, 499)}"


def phone(rng: random.Random) -> str:
    """A random phone number."""
    return f"{rng.randint(200, 999)}-{rng.randint(1000, 9999)}"


def email(rng: random.Random, name: str, domain: str = "example.edu") -> str:
    """An email derived from a name."""
    user = name.lower().replace(" ", ".")
    return f"{user}@{domain}"


def paper_title(rng: random.Random) -> str:
    """A random paper title."""
    adjectives = ["Scalable", "Adaptive", "Declarative", "Peer-to-Peer",
                  "Approximate", "Incremental", "Learned", "Distributed"]
    nouns = ["Query Processing", "Schema Matching", "Data Integration",
             "View Maintenance", "Web Search", "Annotation", "Mediation"]
    return f"{rng.choice(adjectives)} {rng.choice(nouns)}"
