"""Reciprocal-rank fusion of retrieval runs.

The tiered router in :class:`~repro.search.engine.CorpusSearchEngine`
combines a sparse (token-overlap cosine) run and a dense
(expanded-query embedding) run for the same query.  The two tiers
score on incommensurable scales, so the hybrid list is fused on *ranks*
with reciprocal-rank fusion (Cormack et al.):

    score(d) = sum over runs r containing d of 1 / (k + rank_r(d))

Three laws the property tests pin (``tests/test_rank_fusion.py``):

* **Permutation invariance** — fusing the same runs in any order, or
  permuting the items inside a run, yields the identical fused list.
  Scores are summed as exact :class:`~fractions.Fraction`\\ s (ranks are
  integers), so there is no float-accumulation order to leak through.
* **Monotonicity** — an item ranked at least as well as another in
  every run (and present in every run the other appears in) never gets
  a lower fused score.
* **Tie stability** — ranks are *competition ranks* computed from
  scores alone (``rank(d) = 1 + #{e : score(e) > score(d)}``), so items
  tied within a run get the same rank no matter how the run lists them.

Final ordering: descending fused score, ties broken by ascending
document id — the same tie rule every store in :mod:`repro.search`
uses.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Iterable, Sequence

#: The standard RRF smoothing constant: large enough that a single
#: first-place vote cannot drown consistent mid-list agreement.
DEFAULT_RRF_K = 60

Run = Sequence[tuple[Hashable, float]]


def competition_ranks(run: Run) -> dict:
    """Competition ("1224") rank of every document in one run.

    ``run`` is a sequence of ``(doc, score)`` pairs; a document's rank
    is one plus the number of *strictly better* scores, which makes the
    result independent of the order the run lists tied documents in.
    Duplicate documents keep their best score.
    """
    best: dict = {}
    for doc, score in run:
        previous = best.get(doc)
        if previous is None or score > previous:
            best[doc] = score
    scores = sorted(best.values(), reverse=True)
    ranks: dict = {}
    for doc, score in best.items():
        # First index of `score` in the descending list = number of
        # strictly greater scores.
        low, high = 0, len(scores)
        while low < high:
            mid = (low + high) // 2
            if scores[mid] > score:
                low = mid + 1
            else:
                high = mid
        ranks[doc] = low + 1
    return ranks


def rrf_scores(
    runs: Iterable[Run],
    k: int = DEFAULT_RRF_K,
    weights: Sequence[int] | None = None,
) -> dict:
    """Exact (Fraction) RRF score per document across ``runs``.

    ``weights`` (optional, positive integers, one per run) scale each
    run's vote: ``score(d) += w_r / (k + rank_r(d))``.  Integer weights
    keep the sums exact Fractions, so weighted fusion stays bitwise
    permutation-invariant — permuting ``(run, weight)`` *pairs* never
    changes the fused list.
    """
    if k < 1:
        raise ValueError(f"rrf k must be >= 1, got {k}")
    runs = list(runs)
    if weights is None:
        weights = [1] * len(runs)
    else:
        weights = list(weights)
        if len(weights) != len(runs):
            raise ValueError(
                f"got {len(weights)} weights for {len(runs)} runs"
            )
        if any(weight < 1 or weight != int(weight) for weight in weights):
            raise ValueError(f"rrf weights must be positive integers, got {weights}")
    scores: dict = {}
    for run, weight in zip(runs, weights):
        for doc, rank in competition_ranks(run).items():
            scores[doc] = scores.get(doc, Fraction(0)) + Fraction(int(weight), k + rank)
    return scores


def reciprocal_rank_fusion(
    runs: Iterable[Run],
    k: int = DEFAULT_RRF_K,
    limit: int | None = None,
    weights: Sequence[int] | None = None,
) -> list[tuple[Hashable, float]]:
    """Fuse retrieval runs into one ranked ``(doc, score)`` list.

    Scores are returned as floats for reporting, but the ordering is
    decided on the exact Fraction sums, so the fused list is bitwise
    reproducible regardless of run order.  See :func:`rrf_scores` for
    the optional per-run integer ``weights``.
    """
    exact = rrf_scores(runs, k, weights=weights)
    ordered = sorted(exact.items(), key=lambda item: (-item[1], item[0]))
    if limit is not None:
        ordered = ordered[:limit]
    return [(doc, float(score)) for doc, score in ordered]
