"""Text and IR utilities: the U-WORLD toolkit the paper adapts to structures.

The corpus tools of Section 4 of the paper rely on classic information
retrieval machinery: tokenization, stemming, synonym tables, TF/IDF and
string similarity.  This package implements all of it from scratch.
"""

from repro.text.tokenize import normalize_term, tokenize, tokenize_identifier
from repro.text.stem import porter_stem, stem_tokens
from repro.text.synonyms import SynonymTable, TranslationTable, default_synonyms
from repro.text.similarity import (
    damerau_levenshtein,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_ratio,
    monge_elkan,
    ngram_similarity,
    ngrams,
    prefix_similarity,
    soundex,
    token_set_similarity,
)
from repro.text.tfidf import CosineIndex, TfIdfVectorizer, cosine_similarity

__all__ = [
    "CosineIndex",
    "SynonymTable",
    "TfIdfVectorizer",
    "TranslationTable",
    "cosine_similarity",
    "damerau_levenshtein",
    "default_synonyms",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_ratio",
    "monge_elkan",
    "ngram_similarity",
    "ngrams",
    "normalize_term",
    "porter_stem",
    "prefix_similarity",
    "soundex",
    "stem_tokens",
    "token_set_similarity",
    "tokenize",
    "tokenize_identifier",
]
