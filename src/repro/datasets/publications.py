"""The publications domain (the departmental paper database)."""

from __future__ import annotations

import random

from repro.corpus.model import CorpusSchema
from repro.datasets import vocab


def publications_schema_instance(
    name: str = "publications", seed: int = 0, papers: int = 40
) -> CorpusSchema:
    """Reference publications schema with seeded data."""
    rng = random.Random(seed)
    schema = CorpusSchema(name, domain="publications")
    paper_rows = []
    for i in range(papers):
        paper_rows.append(
            (
                i,
                vocab.paper_title(rng),
                rng.choice(vocab.VENUES),
                rng.randint(1995, 2003),
                f"{rng.randint(1, 400)}-{rng.randint(401, 800)}",
            )
        )
    schema.add_relation("paper", ["id", "title", "venue", "year", "pages"], paper_rows)
    author_rows = []
    for i in range(papers):
        for _ in range(rng.randint(1, 3)):
            author_rows.append((i, vocab.person_name(rng)))
    schema.add_relation("author", ["paper_id", "name"], author_rows)
    return schema
