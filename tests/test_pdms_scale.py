"""Parity suite for the PDMS scale layer (benchmark C11's correctness leg).

Everything the scale layer accelerates must be *provably identical* to
the brute-force path it replaces:

* hash-join evaluation == nested-loop evaluation (answers),
* indexed reformulation == unindexed reformulation (rewriting sets),
* the fast UCQ minimizer == the quadratic one (same survivors, same
  deterministic order),
* the batched executor == the per-relation executor (answers + views),

checked on randomized ``pdms_gen`` networks (with schema-only peers and
cross edges) and on targeted hand-built topologies for the closure
logic.
"""

import random

from repro.datasets.pdms_gen import random_tree_pdms
from repro.piazza import (
    DistributedExecutor,
    MappingIndex,
    PDMS,
    evaluate_query,
    evaluate_query_brute_force,
    evaluate_union,
    evaluate_union_brute_force,
    minimize_union,
)
from repro.piazza.datalog import minimize_union_brute_force
from repro.piazza.parse import parse_query, parse_rule


def _random_networks():
    for seed in (1, 5, 11):
        yield random_tree_pdms(
            9, seed=seed, courses=3, extra_edges=3, dataless_peers=2
        )


def _sample_queries(pdms) -> list[str]:
    gold = pdms.generator_info["golds"]["p0"]
    course, instructor, ta = gold["course"], gold["instructor"], gold["ta"]
    return [
        f"q(?t) :- p0.{course}(?c, ?t, ?n, ?w, ?l, ?en, ?d)",
        f"q(?t, ?e) :- p0.{course}(?c, ?t, ?n, ?w, ?l, ?en, ?d), "
        f"p0.{instructor}(?i, ?n, ?e, ?ph, ?o)",
        f"q(?n, ?ta) :- p0.{course}(?c, ?t, ?n, ?w, ?l, ?en, ?d), "
        f"p0.{ta}(?i, ?c, ?ta, ?e, ?h)",
    ]


class TestEvaluationParity:
    def test_hash_join_equals_brute_force_on_random_instances(self):
        rng = random.Random(42)
        for _ in range(25):
            instance = {
                pred: {
                    tuple(rng.randint(0, 3) for _ in range(arity))
                    for _ in range(rng.randint(0, 6))
                }
                for pred, arity in (("r", 2), ("s", 2), ("t", 3))
            }
            query = parse_query(
                rng.choice(
                    [
                        "q(X) :- r(X, Y)",
                        "q(X, Z) :- r(X, Y), s(Y, Z)",
                        "q(X) :- r(X, X)",
                        "q(X, W) :- r(X, Y), s(Y, Z), t(Z, W, V)",
                        "q(X) :- r(X, Y), s(X, Y)",
                        "q(X) :- r(0, X)",
                    ]
                )
            )
            assert evaluate_query(query, instance) == evaluate_query_brute_force(
                query, instance
            )

    def test_const_wrapped_facts_match_like_brute_force(self):
        # Regression: fact-side hash keys must unconst like probe keys,
        # including Consts nested inside Skolem terms.
        from repro.piazza import Const, Func

        instance = {
            "p": {(Const("a"), "b")},
            "f": {(Func("sk", (Const("a"),)), "c")},
        }
        for text in ("q(X) :- p('a', X)", "q(X) :- p(Y, X)"):
            query = parse_query(text)
            assert evaluate_query(query, instance) == evaluate_query_brute_force(
                query, instance
            ) == {("b",)}
        join = parse_query("q(X, Z) :- f(Y, X), f(Y, Z)")
        assert evaluate_query(join, instance) == evaluate_query_brute_force(
            join, instance
        ) == {("c", "c")}

    def test_union_parity_on_generated_networks(self):
        for pdms in _random_networks():
            instance = pdms.instance()
            for query in _sample_queries(pdms):
                result = pdms.reformulate(query)
                assert evaluate_union(
                    result.rewritings, instance
                ) == evaluate_union_brute_force(result.rewritings, instance)

    def test_answer_parity_and_certain_answers(self):
        pdms = random_tree_pdms(5, seed=7, courses=2)
        for query in _sample_queries(pdms):
            fast = pdms.answer(query)
            brute = pdms.answer_brute_force(query)
            assert fast == brute
            # Equality mappings + identity storage: reformulation is
            # complete, so both must equal the chase's certain answers.
            assert fast == pdms.certain(query)


class TestReformulationParity:
    def test_indexed_equals_unindexed_rewritings(self):
        for pdms in _random_networks():
            for query in _sample_queries(pdms):
                indexed = pdms.reformulate(query)
                unindexed = pdms.reformulate(query, indexed=False)
                assert [r.canonical() for r in indexed.rewritings] == [
                    r.canonical() for r in unindexed.rewritings
                ]
                assert indexed.index_hits > 0
                assert unindexed.index_hits == 0

    def test_brute_force_entry_points_accept_indexed_knob(self):
        # Regression: the documented ablation knob must be harmless on
        # the (by definition unindexed) brute-force paths.
        pdms = random_tree_pdms(4, seed=2, courses=2)
        query = _sample_queries(pdms)[0]
        executor = DistributedExecutor(pdms)
        assert pdms.answer_brute_force(query, indexed=False) == pdms.answer(query)
        brute = executor.execute_brute_force(
            query, "p0", reformulation_options={"indexed": False}
        )
        assert brute.answers == pdms.answer(query)

    def test_scale_pipeline_equals_seed_pipeline(self):
        for pdms in _random_networks():
            for query in _sample_queries(pdms):
                fast = pdms.reformulate(query)
                seed_path = pdms.reformulate_brute_force(query)
                assert [r.canonical() for r in fast.rewritings] == [
                    r.canonical() for r in seed_path.rewritings
                ]

    def test_relevance_closure_skips_dead_rules(self):
        # The schema-only peers of the generated network map themselves
        # one-directionally into data peers, so their relations are dead
        # ends the index proves unreachable-to-storage.
        pdms = random_tree_pdms(6, seed=3, courses=2, dataless_peers=3)
        index = pdms.mapping_index()
        assert index.stats.dead_rules > 0
        result = pdms.reformulate(_sample_queries(pdms)[0], max_depth=30)
        assert result.rules_skipped > 0


class TestMappingIndex:
    def _chain(self, length: int) -> PDMS:
        pdms = PDMS()
        for i in range(length):
            peer = pdms.add_peer(f"p{i}")
            peer.add_relation("r", ["a"])
            peer.add_stored("s", ["a"])
            pdms.add_storage(f"p{i}", "s", f"p{i}.r")
        for i in range(length - 1):
            pdms.add_mapping(
                f"m{i}", f"m(X) :- p{i}.r(X)", f"m(X) :- p{i + 1}.r(X)",
                exact=True,
            )
        return pdms

    def test_productive_closure(self):
        rules = [
            parse_rule("a.r(X) :- src!s(X)"),
            parse_rule("b.r(X) :- a.r(X)"),
            parse_rule("c.r(X) :- dead.r(X)"),  # dead.r has no derivation
            parse_rule("c.r(X) :- b.r(X)"),
        ]
        index = MappingIndex(rules, {"src!s"})
        assert index.is_productive("a.r")
        assert index.is_productive("c.r")
        assert not index.is_productive("dead.r")
        # c.r keeps only its live rule.
        assert len(index.rules_for("c.r")) == 1
        assert index.dead_rules_for("c.r") == 1
        assert index.stats.dead_rules == 1

    def test_reachability_closure(self):
        pdms = self._chain(4)
        index = pdms.mapping_index()
        reachable = index.reachable("p3.r")
        assert {"p0!s", "p1!s", "p2!s", "p3!s"} <= reachable
        assert index.relevant_edb({"p3.r"}) == {
            "p0!s", "p1!s", "p2!s", "p3!s",
        }

    def test_cache_invalidation_on_topology_change(self):
        pdms = self._chain(2)
        first = pdms.mapping_index()
        assert pdms.mapping_index() is first  # cached
        peer = pdms.add_peer("late")
        peer.add_relation("r", ["a"])
        peer.add_stored("s", ["a"], [("fresh",)])
        pdms.add_storage("late", "s", "late.r")
        pdms.add_mapping("late_m", "m(X) :- late.r(X)", "m(X) :- p0.r(X)",
                         exact=True)
        rebuilt = pdms.mapping_index()
        assert rebuilt is not first
        assert pdms.answer("q(X) :- p0.r(X)") >= {("fresh",)}

    def test_snapshot_counts(self):
        pdms = self._chain(3)
        snapshot = pdms.mapping_index().stats_snapshot()
        assert snapshot["rules"] == len(pdms.rules())
        assert snapshot["edb_predicates"] == 3
        assert snapshot["dead_rules"] == 0


class TestMinimizeUnion:
    QUERIES = [
        "q(X) :- src!a(X), src!b(X)",   # contained in the next member
        "q(X) :- src!a(X)",
        "q(Y) :- src!a(Y)",             # equivalent to the previous one
        "q(X) :- src!c(X)",
        "q(X) :- src!a(X), src!c(X)",   # contained in both singles
    ]

    def test_matches_brute_force_exactly(self):
        queries = [parse_query(text) for text in self.QUERIES]
        assert minimize_union(queries) == minimize_union_brute_force(queries)

    def test_output_order_deterministic(self):
        queries = [parse_query(text) for text in self.QUERIES]
        first = minimize_union(list(queries))
        second = minimize_union(list(queries))
        assert first == second
        # Survivors keep their input order (a subsequence of the input).
        positions = [queries.index(kept) for kept in first]
        assert positions == sorted(positions)
        # Of the equivalent pair, exactly the earlier member survives.
        assert queries[1] in first
        assert queries[2] not in first

    def test_matches_brute_force_on_generated_unions(self):
        for pdms in _random_networks():
            for query in _sample_queries(pdms):
                raw = pdms.reformulate(query, minimize=False).rewritings
                assert minimize_union(raw) == minimize_union_brute_force(raw)


class TestExecutorParity:
    def test_batched_equals_brute_answers_and_views(self):
        for pdms in _random_networks():
            executor = DistributedExecutor(pdms)
            for query in _sample_queries(pdms):
                fast = executor.execute(query, at_peer="p0")
                brute = executor.execute_brute_force(query, at_peer="p0")
                assert fast.answers == brute.answers
                assert fast.peers_contacted == brute.peers_contacted
                assert fast.messages <= brute.messages

    def test_batching_halves_messages_on_two_relation_query(self):
        pdms = random_tree_pdms(6, seed=2, courses=2)
        query = _sample_queries(pdms)[1]
        executor = DistributedExecutor(pdms)
        options = {"minimize": False}
        fast = executor.execute(query, "p0", reformulation_options=options)
        brute = executor.execute_brute_force(
            query, "p0", reformulation_options=options
        )
        assert fast.answers == brute.answers
        assert brute.messages == 2 * fast.messages

    def test_view_hits_short_circuit_fetches(self):
        pdms = random_tree_pdms(4, seed=2, courses=2)
        query = _sample_queries(pdms)[0]
        executor = DistributedExecutor(pdms)
        for rewriting in pdms.reformulate(query).rewritings:
            executor.materialize("p0", rewriting)
        served = executor.execute(query, at_peer="p0")
        assert served.view_hits > 0
        assert served.messages == 0
        assert served.answers == pdms.answer(query)
