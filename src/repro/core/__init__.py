"""The REVERE facade: Figure 1's architecture wired together."""

from repro.core.revere import RevereSystem

__all__ = ["RevereSystem"]
