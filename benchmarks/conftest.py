"""Shared fixtures for the experiment harness.

Every benchmark prints a ResultTable with the rows/series of the
corresponding paper figure or claim (run with ``-s`` to see them, or
read EXPERIMENTS.md, which records a reference run).

Observability: every bench module also leaves a JSON snapshot of the
process-wide :mod:`repro.obs` metrics registry in ``benchmarks/out/``
(``<module>.metrics.json``) — counters, gauges and p50/p95/p99
histogram summaries accumulated by that module's workloads.  The
registry is reset per module so each snapshot covers exactly one
bench.  (Benches that build their own ``Observability`` instances —
C15's isolated arms — don't show up here, by design.)

Perf trajectory (ISSUE 10): each ``bench_cNN_*`` / ``bench_fNN_*``
module additionally writes ``BENCH_<ID>.json`` to the **repo root** —
the module's shown ResultTables (speedups, latencies, the asserted
bars) plus the same metrics snapshot — so the performance story is a
set of committed, diffable files trackable across PRs.  Render one
with ``python -m repro.obs snapshot BENCH_C11.json``.
"""

import json
import os
import re

import pytest

from repro import obs
from repro.bench.runner import drain_shown_tables

_BENCH_ID = re.compile(r"bench_([a-z]\d+)_")
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def pytest_configure(config):
    # Benchmarks print experiment tables; keep them visible by default
    # when running the benchmarks directory explicitly with -s.
    pass


@pytest.fixture(scope="session")
def seed():
    return 1


def _quick_flags() -> list[str]:
    """The BENCH_*_QUICK knobs active for this run (workload context)."""
    return sorted(
        name for name, value in os.environ.items()
        if name.startswith("BENCH_") and name.endswith("_QUICK")
        and value not in ("", "0")
    )


@pytest.fixture(autouse=True, scope="module")
def dump_metrics_snapshot(request):
    """Reset the default registry per bench module, dump it afterwards.

    Also drains the shown-tables registry on both sides of the module:
    before, so another module's tables are never misattributed; after,
    into the module's ``BENCH_<ID>.json`` trajectory file.
    """
    registry = obs.default().metrics
    registry.reset()
    drain_shown_tables()
    yield
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{request.module.__name__}.metrics.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.to_json(indent=2))
        handle.write("\n")
    tables = drain_shown_tables()
    match = _BENCH_ID.match(request.module.__name__)
    if match is None:
        return
    summary = {
        "bench": request.module.__name__,
        "quick_flags": _quick_flags(),
        "tables": [table.to_dict() for table in tables],
        "metrics": registry.snapshot(),
    }
    trajectory = os.path.join(_REPO_ROOT, f"BENCH_{match.group(1).upper()}.json")
    with open(trajectory, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
