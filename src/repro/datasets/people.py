"""The people/contact domain (personal home pages, Who's Who)."""

from __future__ import annotations

import random

from repro.corpus.model import CorpusSchema
from repro.datasets import vocab


def people_schema_instance(
    name: str = "people", seed: int = 0, persons: int = 40
) -> CorpusSchema:
    """Reference contact-information schema with seeded data."""
    rng = random.Random(seed)
    schema = CorpusSchema(name, domain="people")
    person_rows = []
    for i in range(persons):
        full_name = vocab.person_name(rng)
        person_rows.append(
            (
                i,
                full_name,
                vocab.email(rng, full_name),
                vocab.phone(rng),
                vocab.room(rng),
                rng.choice(vocab.POSITIONS),
            )
        )
    schema.add_relation(
        "person", ["id", "name", "email", "phone", "office", "position"], person_rows
    )
    interest_rows = []
    for i in range(persons):
        interest_rows.append((i, rng.choice(vocab.SUBJECTS)))
    schema.add_relation("interest", ["person_id", "topic"], interest_rows)
    return schema
