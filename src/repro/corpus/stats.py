"""Basic statistics over the corpus (Section 4.2.1).

Three families, exactly as the paper enumerates:

* **Term usage** — "how frequently the term is used as a relation name,
  attribute name, or in data (both as a percent of all of its uses and
  as a percent of structures in the corpus)";
* **Co-occurring schema elements** — which attribute terms appear
  together in relations (scored with pointwise mutual information), and
  attribute clusters;
* **Similar names** — "which other words tend to be used with similar
  statistical characteristics" (cosine over co-occurrence profiles).

Every statistic respects :class:`StatisticsOptions`: "we maintain
different versions, depending on whether we take into consideration
word stemming, synonym tables, inter-language dictionaries, or any
combination of these three."

Scale: statistics build **lazily** (first access) and grow
**incrementally** (:meth:`BasicStatistics.add_schema` folds one schema
in without a rebuild).  The ranked retrieval statistics — similar
names, relation names for an attribute set — route through the
:class:`~repro.search.engine.CorpusSearchEngine`, which replaces the
original brute-force scans with posting-pruned indexed top-k while
returning bitwise-identical rankings; the ``*_brute_force`` variants
keep the reference implementations for parity tests and benchmarks.
"""

from __future__ import annotations

import math
import typing
from collections import Counter
from dataclasses import dataclass, field

from repro.corpus.model import Corpus, CorpusSchema
from repro.text import SynonymTable, TranslationTable, porter_stem, tokenize_identifier
from repro.text.tfidf import cosine_similarity

if typing.TYPE_CHECKING:
    from repro.search.engine import CorpusSearchEngine

ROLES = ("relation", "attribute", "data")

# Memoized normalizations per StatisticsOptions instance are capped so a
# pathological stream of distinct data values cannot grow without bound.
_NORMALIZE_MEMO_LIMIT = 200_000

# Schema term profiles (the blocking signal of the matching pipeline)
# weight name occurrences over data occurrences: names carry the
# schema's design vocabulary, data tokens repeat across independently
# designed schemas of different domains.
_PROFILE_NAME_WEIGHT = 1.0
_PROFILE_DATA_WEIGHT = 0.25


def _term_profile(schema: CorpusSchema, normalize) -> Counter:
    """Normalized name/instance term profile of one schema."""
    profile: Counter = Counter()
    for relation, attributes in schema.relations.items():
        profile[normalize(relation)] += _PROFILE_NAME_WEIGHT
        for attribute in attributes:
            profile[normalize(attribute)] += _PROFILE_NAME_WEIGHT
        for data_row in schema.data.get(relation, []):
            for value in data_row:
                if isinstance(value, str) and value:
                    profile[normalize(value)] += _PROFILE_DATA_WEIGHT
    return profile


@dataclass
class StatisticsOptions:
    """Normalization knobs for every statistic."""

    stem: bool = True
    synonyms: SynonymTable | None = None
    translations: TranslationTable | None = None
    expand_abbreviations: bool = True

    def __post_init__(self):  # noqa: D105
        self._memo: dict[str, str] = {}

    def normalize(self, term: str) -> str:
        """Canonical form of one term under the options (memoized).

        Corpus construction normalizes every data-value occurrence;
        values repeat heavily, so the raw-term memo turns the dominant
        build cost into a dict hit.
        """
        cached = self._memo.get(term)
        if cached is not None:
            return cached
        tokens = tokenize_identifier(term, expand_abbreviations=self.expand_abbreviations)
        normalized: list[str] = []
        for token in tokens:
            if self.translations is not None:
                token = self.translations.translate(token)
            if self.synonyms is not None:
                token = self.synonyms.canonical(token)
            if self.stem:
                token = porter_stem(token)
            normalized.append(token)
        result = " ".join(normalized)
        if len(self._memo) >= _NORMALIZE_MEMO_LIMIT:
            self._memo.clear()
        self._memo[term] = result
        return result

    def fingerprint(self) -> tuple:
        """Hashable identity of the normalization configuration.

        Used in search-cache keys so entries computed under different
        options can never collide.  Tables are identified by object
        identity: options are treated as immutable once in use.
        """
        return (
            self.stem,
            self.expand_abbreviations,
            id(self.synonyms) if self.synonyms is not None else None,
            id(self.translations) if self.translations is not None else None,
        )


@dataclass
class TermUsage:
    """Usage profile of one normalized term."""

    term: str
    role_counts: Counter = field(default_factory=Counter)
    schemas: set = field(default_factory=set)

    def total(self) -> int:
        """Occurrences across all roles."""
        return sum(self.role_counts.values())

    def role_fraction(self, role: str) -> float:
        """Fraction of this term's uses that are in ``role``."""
        total = self.total()
        return self.role_counts.get(role, 0) / total if total else 0.0


class BasicStatistics:
    """Compute and serve the Section 4.2.1 statistics for a corpus.

    Construction is cheap: nothing is computed until the first
    statistic is requested (``ensure_built``).  Schemas added
    afterwards — through :meth:`add_schema` or directly via
    ``Corpus.add_schema`` — are folded in incrementally (eagerly or on
    the next access, respectively): counters updated in place, and
    only the touched terms re-indexed by the search engine.
    """

    def __init__(self, corpus: Corpus, options: StatisticsOptions | None = None):  # noqa: D107
        self.corpus = corpus
        self.options = options or StatisticsOptions()
        self._usage: dict[str, TermUsage] = {}
        self._cooccur: dict[str, Counter] = {}
        self._attr_schema_count: Counter = Counter()
        self._relation_signatures: list[tuple[str, frozenset]] = []
        self._schema_relation_terms: dict[str, frozenset] = {}
        self._schema_signatures: dict[str, frozenset] = {}
        self._schema_profiles: dict[str, Counter] = {}
        self._schema_count = 0
        self._built = False
        self._version = 0
        self._engine: "CorpusSearchEngine | None" = None
        # Similar-names scoring uses each term's *re-normalized alias*
        # (normalize is not idempotent under stemming: "cours id" ->
        # "cour id"); the alias maps let the engine replicate the
        # original brute-force semantics exactly and re-index every
        # affected term when an alias row changes.
        self._alias: dict[str, str] = {}
        self._alias_docs: dict[str, set[str]] = {}
        # Engine drain state: what changed since the engine last synced.
        self._dirty_rows: set[str] = set()
        self._new_docs: set[str] = set()
        self._dirty_schemas: list[str] = []
        self._drained_signatures = 0

    # -- construction ---------------------------------------------------------
    def _note(self, term: str, role: str, schema: str) -> None:
        usage = self._usage.setdefault(term, TermUsage(term))
        usage.role_counts[role] += 1
        usage.schemas.add(schema)

    def _ingest(self, schema: CorpusSchema) -> None:
        """Fold one schema into every statistic (the incremental unit)."""
        normalize = self.options.normalize
        relation_terms: set[str] = set()
        structural: set[tuple[str, frozenset]] = set()
        for relation, attributes in schema.relations.items():
            relation_term = normalize(relation)
            relation_terms.add(relation_term)
            self._note(relation_term, "relation", schema.name)
            normalized_attrs = []
            for attribute in attributes:
                term = normalize(attribute)
                normalized_attrs.append(term)
                self._note(term, "attribute", schema.name)
                self._attr_schema_count[term] += 1
            signature = frozenset(normalized_attrs)
            structural.add((relation_term, signature))
            self._relation_signatures.append((relation_term, signature))
            for term_a in signature:
                cooccur_row = self._cooccur.get(term_a)
                if cooccur_row is None:
                    cooccur_row = self._cooccur[term_a] = Counter()
                    alias = normalize(term_a)
                    self._alias[term_a] = alias
                    self._alias_docs.setdefault(alias, set()).add(term_a)
                    self._new_docs.add(term_a)
                self._dirty_rows.add(term_a)
                for term_b in signature:
                    if term_a != term_b:
                        cooccur_row[term_b] += 1
            for rows in (schema.data.get(relation, []),):
                for data_row in rows:
                    for value in data_row:
                        if isinstance(value, str) and value:
                            self._note(normalize(value), "data", schema.name)
        self._schema_relation_terms[schema.name] = frozenset(relation_terms)
        self._schema_signatures[schema.name] = frozenset(structural)
        self._schema_profiles[schema.name] = _term_profile(schema, normalize)
        self._dirty_schemas.append(schema.name)
        self._schema_count += 1
        self._version += 1

    def ensure_built(self) -> None:
        """Catch the statistics up with the corpus, lazily.

        First call ingests every corpus schema; afterwards an O(1)
        count check guards the common path, and schemas registered
        directly through ``Corpus.add_schema`` since the last access
        are folded in incrementally — statistics always reflect the
        live corpus at query time.
        """
        if self._built and len(self.corpus.schemas) == self._schema_count:
            return
        self._built = True
        for schema in self.corpus.schemas.values():
            if schema.name not in self._schema_relation_terms:
                self._ingest(schema)

    def add_schema(self, schema: CorpusSchema) -> None:
        """Register ``schema`` and fold it into the statistics incrementally.

        Registers with the corpus if needed.  Before the lazy build has
        run this is just corpus registration (the build will pick the
        schema up); afterwards it updates every counter in place — no
        rebuild — and marks the touched terms for engine re-indexing.
        (Schemas registered directly with ``Corpus.add_schema`` are
        also caught up on the next statistic access; this entry point
        just does the fold-in eagerly.)
        """
        if schema.name not in self.corpus:
            self.corpus.add_schema(schema)
        if self._built and schema.name not in self._schema_relation_terms:
            self._ingest(schema)

    # -- search-engine protocol ------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (one tick per ingested schema)."""
        return self._version

    @property
    def engine(self) -> "CorpusSearchEngine":
        """The (single) search engine serving this statistics instance."""
        if self._engine is None:
            from repro.search.engine import CorpusSearchEngine

            self._engine = CorpusSearchEngine(self)
        return self._engine

    def configure_engine(self, **options) -> "CorpusSearchEngine":
        """Replace the engine with one built with explicit options.

        ``options`` are :class:`~repro.search.engine.CorpusSearchEngine`
        constructor keywords (``dense_dim``, ``dense_seed``,
        ``expansion_terms``, ``rrf_k``, ``cache_size``, ``obs`` ...).
        The previous engine's indexes and cache are discarded; the new
        one re-syncs lazily on its first query.  Used by the IR eval
        harness to score alternative retrieval configurations against
        one corpus build.
        """
        from repro.search.engine import CorpusSearchEngine

        # A fresh engine must re-consume the full drain stream; reset
        # the producer so nothing ingested so far is skipped.
        self._dirty_rows = set(self._cooccur)
        self._new_docs = set(self._cooccur)
        self._dirty_schemas = list(self._schema_relation_terms)
        self._drained_signatures = 0
        self._engine = CorpusSearchEngine(self, **options)
        return self._engine

    def drain_index_updates(self) -> tuple[set[str], list[tuple[str, frozenset]], list[tuple[str, frozenset, frozenset, Counter]]]:
        """Consume the changes since the last drain (engine sync protocol).

        Returns ``(terms whose similarity profile must be re-indexed,
        new signature rows, new (schema, relation-terms, structural
        signature, term-profile) tuples)``.  Single consumer: the
        owning engine.
        """
        self.ensure_built()
        dirty_docs = set(self._new_docs)
        for row_term in self._dirty_rows:
            dirty_docs |= self._alias_docs.get(row_term, set())
        self._new_docs = set()
        self._dirty_rows = set()
        new_rows = self._relation_signatures[self._drained_signatures:]
        self._drained_signatures = len(self._relation_signatures)
        dirty_schemas, self._dirty_schemas = self._dirty_schemas, []
        new_schemas = [
            (
                name,
                self._schema_relation_terms[name],
                self._schema_signatures[name],
                self._schema_profiles[name],
            )
            for name in dirty_schemas
        ]
        return dirty_docs, new_rows, new_schemas

    def profile_row_for(self, term: str) -> Counter:
        """The live co-occurrence row that *scores* ``term``.

        This is the row of the term's re-normalized alias — exactly the
        vector ``co_occurrence_vector(term)`` returns — which the
        engine copies at indexing time.
        """
        alias = self._alias.get(term)
        if alias is None:
            alias = self.options.normalize(term)
        return self._cooccur.get(alias, Counter())

    # -- term usage ---------------------------------------------------------------
    def usage(self, term: str) -> TermUsage:
        """Usage profile (zeros if the term never occurs)."""
        self.ensure_built()
        return self._usage.get(self.options.normalize(term), TermUsage(term))

    def role_distribution(self, term: str) -> dict[str, float]:
        """Fractions per role for a term."""
        profile = self.usage(term)
        return {role: profile.role_fraction(role) for role in ROLES}

    def schema_frequency(self, term: str) -> float:
        """Fraction of corpus schemas in which the term occurs at all."""
        self.ensure_built()
        if not self._schema_count:
            return 0.0
        return len(self.usage(term).schemas) / self._schema_count

    def idf(self, term: str) -> float:
        """Inverse schema frequency — the TF/IDF analogue over structures."""
        self.ensure_built()
        df = len(self.usage(term).schemas)
        return math.log((1 + self._schema_count) / (1 + df)) + 1.0

    def vocabulary(self) -> set[str]:
        """All normalized terms seen."""
        self.ensure_built()
        return set(self._usage)

    # -- co-occurrence --------------------------------------------------------------
    def co_occurring(self, term: str, limit: int = 10) -> list[tuple[str, float]]:
        """Attribute terms most associated with ``term``, by PMI."""
        self.ensure_built()
        term = self.options.normalize(term)
        row = self._cooccur.get(term)
        if not row:
            return []
        total_relations = max(len(self._relation_signatures), 1)
        count_term = self._attr_schema_count[term]
        scored: list[tuple[str, float]] = []
        for other, joint in row.items():
            count_other = self._attr_schema_count[other]
            pmi = math.log(
                (joint * total_relations) / max(count_term * count_other, 1) + 1e-12
            )
            scored.append((other, pmi))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:limit]

    def co_occurrence_vector(self, term: str) -> dict[str, float]:
        """The raw co-occurrence profile (counts) of a term."""
        self.ensure_built()
        term = self.options.normalize(term)
        return dict(self._cooccur.get(term, {}))

    def mutually_exclusive(self, term_a: str, term_b: str) -> bool:
        """Both terms appear as attributes, but never in the same relation
        — the "mutually exclusive uses" signal of Section 4.2.1."""
        self.ensure_built()
        a = self.options.normalize(term_a)
        b = self.options.normalize(term_b)
        if self._attr_schema_count[a] == 0 or self._attr_schema_count[b] == 0:
            return False
        return self._cooccur.get(a, Counter()).get(b, 0) == 0

    # -- similar names -----------------------------------------------------------------
    def similar_names(self, term: str, limit: int = 5) -> list[tuple[str, float]]:
        """Terms whose co-occurrence profile resembles ``term``'s.

        Served by the search engine: posting-pruned, norm-precomputed
        top-k cosine with an LRU cache — identical output to
        :meth:`similar_names_brute_force`.
        """
        self.ensure_built()
        target = self.options.normalize(term)
        return self.engine.similar_terms(target, limit)

    def similar_names_brute_force(self, term: str, limit: int = 5) -> list[tuple[str, float]]:
        """Reference O(vocabulary) scan (parity tests, benchmark C10)."""
        self.ensure_built()
        target = self.options.normalize(term)
        target_vector = self.co_occurrence_vector(target)
        if not target_vector:
            return []
        scored: list[tuple[str, float]] = []
        for other in self._cooccur:
            if other == target:
                continue
            similarity = cosine_similarity(target_vector, self.co_occurrence_vector(other))
            if similarity > 0.0:
                scored.append((other, similarity))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:limit]

    # -- schema similarity (the matching pipeline's blocking signal) ------------
    def schema_profile(self, schema: CorpusSchema) -> Counter:
        """Normalized name/instance term profile of ``schema``.

        Pure: works for schemas outside the corpus (an incoming schema
        being matched).  For ingested schemas this equals the profile
        the engine indexed, so a corpus member queries back to itself
        at similarity 1.0.
        """
        return _term_profile(schema, self.options.normalize)

    def similar_schemas(self, profile: Counter, limit: int = 5) -> list[tuple[str, float]]:
        """Corpus schemas most similar to a term ``profile``, by cosine
        over name/instance posting overlap.

        Served by the search engine's schema-profile vector store:
        posting-pruned top-k, identical output to
        :meth:`similar_schemas_brute_force`.
        """
        self.ensure_built()
        return self.engine.similar_schemas(profile, limit)

    def schema_signature(self, schema: CorpusSchema) -> frozenset:
        """Normalized structural signature of ``schema``.

        The key of the search engine's exact structured-lookup tier:
        ``frozenset`` of ``(relation term, frozenset(attribute terms))``
        pairs.  Two schemas with equal signatures are structurally
        identical up to normalization — relation names *and* every
        attribute set.  (Relation names alone are far too coarse:
        normalization folds abbreviation/style renames back together,
        so unrelated designs frequently share relation-name sets.)
        """
        normalize = self.options.normalize
        return frozenset(
            (
                normalize(relation),
                frozenset(normalize(attribute) for attribute in attributes),
            )
            for relation, attributes in schema.relations.items()
        )

    def search_schemas(
        self,
        schema: CorpusSchema,
        limit: int = 5,
        strategy: str = "hybrid",
        exclude=(),
    ) -> list[tuple[str, float]]:
        """Tiered corpus-schema retrieval for an incoming schema.

        Computes the schema's term profile and structural signature,
        then routes through :meth:`CorpusSearchEngine.search_schemas`:
        exact structured lookup, sparse top-k, corpus-expanded dense
        scoring, or reciprocal-rank-fused hybrid — selected per query
        by ``strategy``.  Ranking quality per strategy is measured by
        the golden-query harness in :mod:`repro.eval` (benchmark C16).
        """
        self.ensure_built()
        return self.engine.search_schemas(
            self.schema_profile(schema),
            limit,
            strategy=strategy,
            exclude=exclude,
            signature=self.schema_signature(schema),
        )

    def similar_schemas_brute_force(self, profile: Counter, limit: int = 5) -> list[tuple[str, float]]:
        """Reference O(corpus) scan (parity tests)."""
        self.ensure_built()
        query = dict(profile)
        scored: list[tuple[str, float]] = []
        for name, candidate in self._schema_profiles.items():
            similarity = cosine_similarity(query, dict(candidate))
            if similarity > 0.0:
                scored.append((name, similarity))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:limit]

    # -- relation-level helpers -----------------------------------------------------------
    def relation_signatures(self) -> list[tuple[str, frozenset]]:
        """(normalized relation name, normalized attribute set) per corpus
        relation — the raw material for layout advice."""
        self.ensure_built()
        return list(self._relation_signatures)

    def relation_name_for(self, attributes: frozenset) -> list[tuple[str, int]]:
        """Relation names used in the corpus for similar attribute sets.

        Returns (relation term, votes) sorted by votes — used by the
        DesignAdvisor's layout advice.  Served by the search engine's
        signature postings; identical output to
        :meth:`relation_name_for_brute_force`.
        """
        self.ensure_built()
        return self.engine.relation_names_for(frozenset(attributes))

    def relation_name_for_brute_force(self, attributes: frozenset) -> list[tuple[str, int]]:
        """Reference full-signature scan (parity tests, benchmark C10)."""
        self.ensure_built()
        votes: Counter = Counter()
        for relation_term, signature in self._relation_signatures:
            if not attributes or not signature:
                continue
            overlap = len(attributes & signature) / len(attributes | signature)
            if overlap >= 0.5:
                votes[relation_term] += 1
        return votes.most_common()
