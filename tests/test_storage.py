"""Storage-engine tests (ISSUE 8): contract, parity, crash points, codecs.

Four families:

* engine contract + randomized mutation-stream parity — ``MemoryEngine``
  is the oracle; ``LogEngine`` and ``ShardedEngine`` (memory and log
  children) must stay row-for-row equal under identical streams,
  including secondary-index-visible state;
* WAL crash points — a torn final append (partial header or payload) is
  dropped cleanly and flagged; a complete-but-corrupt record (bad CRC,
  bad JSON under a valid CRC) raises the typed ``CorruptLogError``; so
  does a corrupt snapshot;
* one-record-one-notification regression — every logical store
  operation (``Table.insert`` / ``delete_where`` / ``update_where``,
  ``TripleStore.replace_source`` / ``add_all``) under a ``LogEngine``
  emits exactly one WAL record and at most one delta notification;
* hypothesis round trips for every codec in ``repro.storage.records``,
  including empty grams/deltas and unicode values.
"""

import random
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs as obs_mod
from repro.piazza.updates import Updategram
from repro.rdf.store import TripleStore
from repro.rdf.triples import Delta, Triple
from repro.relational import ColumnType, Database, IntegrityError
from repro.storage import (
    CorruptLogError,
    LogEngine,
    MemoryEngine,
    ShardedEngine,
    SnapshotFile,
    WriteAheadLog,
    decode_delta,
    decode_engine_snapshot,
    decode_peer_snapshot,
    decode_row,
    decode_updategram,
    decode_value,
    encode_delta,
    encode_engine_snapshot,
    encode_peer_snapshot,
    encode_row,
    encode_updategram,
    encode_value,
    stable_row_hash,
)
from repro.storage.wal import _HEADER


# -- engine contract ---------------------------------------------------------
def contract_engines(tmp_path):
    return {
        "memory": MemoryEngine(),
        "log": LogEngine(tmp_path / "log", snapshot_every=None),
        "log-snap": LogEngine(tmp_path / "snap", snapshot_every=3),
        "sharded": ShardedEngine(shards=3),
        "sharded-log": ShardedEngine(
            shards=3,
            child_factory=lambda i: LogEngine(
                tmp_path / "shards", name=f"s{i}", snapshot_every=None
            ),
        ),
    }


def test_engine_contract_basics(tmp_path):
    for name, engine in contract_engines(tmp_path).items():
        a = engine.append(("a", 1))
        b = engine.append(("b", 2))
        c = engine.append(("c", 3))
        assert [a, b, c] == [0, 1, 2], name
        assert engine.get(b) == ("b", 2)
        assert engine.delete(b) == ("b", 2)
        assert engine.get(b) is None
        assert engine.delete(b) is None
        # deleted ids are never reused
        assert engine.append(("d", 4)) == 3
        engine.replace(c, ("c", 30))
        assert engine.get(c) == ("c", 30)
        assert list(engine.scan()) == [
            (0, ("a", 1)),
            (2, ("c", 30)),
            (3, ("d", 4)),
        ], name
        assert len(engine) == 3
        assert engine.describe()["rows"] == 3
        engine.close()


def test_scan_order_is_row_id_order_after_reroute(tmp_path):
    engine = ShardedEngine(shards=4)
    ids = [engine.append((f"row-{i}", i)) for i in range(40)]
    # replace re-routes rows whose content hash moves them to another shard
    for row_id in ids[::3]:
        engine.replace(row_id, (f"moved-{row_id}", row_id * 10))
    scanned = [row_id for row_id, _row in engine.scan()]
    assert scanned == sorted(scanned)
    assert sum(engine.shard_sizes()) == len(engine) == 40


def test_stable_row_hash_is_deterministic():
    assert stable_row_hash(("x", 1)) == stable_row_hash(("x", 1))
    assert stable_row_hash(("x", 1)) == zlib.crc32(repr(("x", 1)).encode("utf-8"))


# -- randomized mutation-stream parity ---------------------------------------
def make_table(engine):
    db = Database("parity")
    table = db.create_table(
        "items",
        [
            ("id", ColumnType.INT),
            ("dept", ColumnType.TEXT),
            ("size", ColumnType.INT),
        ],
        primary_key=("id",),
        engine=engine,
    )
    table.create_hash_index(("dept",))
    table.create_sorted_index("size")
    return table


def drive_table(table, seed, steps=120):
    rng = random.Random(seed)
    next_key = 0
    for _ in range(steps):
        op = rng.random()
        if op < 0.55:
            try:
                table.insert((next_key, rng.choice("abc"), rng.randint(0, 50)))
            except IntegrityError:
                pass
            next_key += 1
        elif op < 0.7:
            dept = rng.choice("abc")
            table.delete_where(lambda row: row["dept"] == dept)
        elif op < 0.85:
            dept = rng.choice("abc")
            bump = rng.randint(1, 5)
            table.update_where(
                lambda row: row["dept"] == dept, {"size": rng.randint(0, 50)}
            )
        else:
            table.delete_row(rng.randrange(max(next_key, 1)))


def table_fingerprint(table):
    index = table.hash_index_for({"dept"})
    sorted_index = table.sorted_index_for("size")
    return {
        "rows": list(table.engine.scan()),
        "len": len(table),
        "hash": {d: sorted(index.lookup((d,))) for d in "abc"},
        "range": sorted(sorted_index.range_lookup(10, 40)),
        "pk": [table.lookup_pk((k,)) for k in range(130)],
    }


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_randomized_mutation_stream_parity(tmp_path, seed):
    tables = {
        name: make_table(engine)
        for name, engine in contract_engines(tmp_path / str(seed)).items()
    }
    for table in tables.values():
        drive_table(table, seed)
    oracle = table_fingerprint(tables["memory"])
    for name, table in tables.items():
        assert table_fingerprint(table) == oracle, name
        table.close()


@pytest.mark.parametrize("seed", [0, 1])
def test_triple_store_parity_across_engines(tmp_path, seed):
    stores = {
        "memory": TripleStore(),
        "log": TripleStore(
            engine=LogEngine(tmp_path / "t", name=f"trip{seed}", snapshot_every=5)
        ),
        "sharded": TripleStore(engine=ShardedEngine(shards=3)),
    }
    rng = random.Random(seed)
    sources = [f"url{i}" for i in range(4)]
    ops = []
    for _ in range(60):
        kind = rng.random()
        if kind < 0.4:
            ops.append(
                (
                    "add_all",
                    [
                        Triple(f"s{rng.randint(0, 9)}", f"p{rng.randint(0, 2)}",
                               rng.randint(0, 5), rng.choice(sources))
                        for _ in range(rng.randint(1, 3))
                    ],
                )
            )
        elif kind < 0.6:
            ops.append(("remove", (f"s{rng.randint(0, 9)}", f"p{rng.randint(0, 2)}",
                                   rng.randint(0, 5))))
        else:
            ops.append(
                (
                    "replace_source",
                    rng.choice(sources),
                    [
                        Triple(f"s{rng.randint(0, 9)}", f"p{rng.randint(0, 2)}",
                               rng.randint(0, 5), "ignored")
                        for _ in range(rng.randint(0, 4))
                    ],
                )
            )
    for name, store in stores.items():
        for op in ops:
            if op[0] == "add_all":
                store.add_all(op[1])
            elif op[0] == "remove":
                store.remove(*op[1])
            else:
                store.replace_source(op[1], op[2])
    oracle = stores["memory"].all_triples()
    for name, store in stores.items():
        assert store.all_triples() == oracle, name
        assert list(store.match(predicate="p1")) == [
            t for t in oracle if t.predicate == "p1"
        ], name
        store.close()


# -- WAL crash points --------------------------------------------------------
def logged_table(tmp_path, name="t"):
    return make_table(LogEngine(tmp_path, name=name, snapshot_every=None))


def test_truncated_tail_partial_payload_dropped(tmp_path):
    table = logged_table(tmp_path)
    for key in range(5):
        table.insert((key, "a", key))
    table.close()
    wal = tmp_path / "t.wal"
    wal.write_bytes(wal.read_bytes()[:-3])  # tear the final append
    engine = LogEngine(tmp_path, name="t", snapshot_every=None)
    assert engine.truncated_tail
    assert engine.replayed_records == 4
    recovered = make_table(engine)
    assert [row["id"] for row in recovered.scan()] == [0, 1, 2, 3]
    engine.close()


def test_truncated_tail_partial_header_dropped(tmp_path):
    table = logged_table(tmp_path)
    table.insert((0, "a", 0))
    table.close()
    wal = tmp_path / "t.wal"
    wal.write_bytes(wal.read_bytes() + b"\x00\x01")  # torn header-only append
    engine = LogEngine(tmp_path, name="t", snapshot_every=None)
    assert engine.truncated_tail
    assert engine.replayed_records == 1
    engine.close()


def test_append_after_torn_tail_recovery_stays_recoverable(tmp_path):
    """Regression: the torn tail must be truncated, not just dropped.

    Crash mid-append -> recover -> write one record -> recover again.
    Before the fix, recovery dropped the garbage bytes in memory but
    left them on disk, so the post-recovery append landed *behind*
    them and the second recovery raised ``CorruptLogError``.
    """
    table = logged_table(tmp_path)
    for key in range(5):
        table.insert((key, "a", key))
    table.close()
    wal = tmp_path / "t.wal"
    torn_size = len(wal.read_bytes())
    wal.write_bytes(wal.read_bytes()[:-3])  # tear the final append
    engine = LogEngine(tmp_path, name="t", snapshot_every=None)
    assert engine.truncated_tail
    assert wal.stat().st_size < torn_size - 3  # garbage truncated on disk
    survivor = make_table(engine)
    survivor.insert((4, "b", 4))  # append after the repaired tail
    survivor.close()
    recovered = LogEngine(tmp_path, name="t", snapshot_every=None)
    assert not recovered.truncated_tail
    assert recovered.replayed_records == 5
    assert [row["id"] for row in make_table(recovered).scan()] == [0, 1, 2, 3, 4]
    recovered.close()


def test_append_to_unread_torn_log_truncates_first(tmp_path):
    """A torn log appended to without a recovery read is repaired too.

    ``PeerLog`` appends grams without necessarily calling ``records()``
    first, so ``append`` itself must validate the tail on first touch.
    """
    path = tmp_path / "x.wal"
    wal = WriteAheadLog(path)
    for i in range(3):
        wal.append({"i": i})
    wal.close()
    path.write_bytes(path.read_bytes()[:-2])  # tear the final append
    fresh = WriteAheadLog(path)
    fresh.append({"i": 99})  # first touch is a write, not a read
    assert fresh.truncated_tail
    fresh.close()
    reader = WriteAheadLog(path)
    assert [r["i"] for r in reader.records()] == [0, 1, 99]
    assert not reader.truncated_tail


def test_sync_mode_survives_restart(tmp_path):
    """sync=True (per-append fsync + directory fsync) round-trips."""
    engine = LogEngine(tmp_path, name="s", snapshot_every=None, sync=True)
    engine.append((1,))
    engine.append((2,))
    engine.checkpoint()
    engine.append((3,))
    engine.close()
    recovered = LogEngine(tmp_path, name="s", snapshot_every=None, sync=True)
    assert [row for _id, row in recovered.scan()] == [(1,), (2,), (3,)]
    recovered.close()


def test_corrupt_complete_record_raises_typed_error(tmp_path):
    table = logged_table(tmp_path)
    for key in range(3):
        table.insert((key, "a", key))
    table.close()
    wal = tmp_path / "t.wal"
    data = bytearray(wal.read_bytes())
    data[_HEADER.size + 2] ^= 0xFF  # flip a byte inside the first payload
    wal.write_bytes(bytes(data))
    with pytest.raises(CorruptLogError):
        LogEngine(tmp_path, name="t", snapshot_every=None)


def test_bad_json_under_valid_crc_raises_typed_error(tmp_path):
    payload = b"definitely not json"
    frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    (tmp_path / "t.wal").write_bytes(frame)
    with pytest.raises(CorruptLogError):
        LogEngine(tmp_path, name="t", snapshot_every=None)


def test_corrupt_snapshot_raises_typed_error(tmp_path):
    engine = LogEngine(tmp_path, name="t", snapshot_every=None)
    engine.append(("a",))
    engine.checkpoint()
    engine.close()
    snap = tmp_path / "t.snapshot"
    snap.write_bytes(snap.read_bytes()[:-2])
    with pytest.raises(CorruptLogError):
        LogEngine(tmp_path, name="t", snapshot_every=None)


def test_snapshot_write_is_atomic_and_resets_wal(tmp_path):
    engine = LogEngine(tmp_path, name="t", snapshot_every=None)
    for i in range(10):
        engine.append((i,))
    assert engine.wal_size_bytes() > 0
    engine.checkpoint()
    assert engine.wal_size_bytes() == 0
    engine.close()
    recovered = LogEngine(tmp_path, name="t", snapshot_every=None)
    assert recovered.replayed_records == 0  # all state came from the snapshot
    assert [row for _id, row in recovered.scan()] == [(i,) for i in range(10)]
    assert recovered.next_id == 10
    recovered.close()


def test_recovery_preserves_next_id_past_trailing_deletes(tmp_path):
    engine = LogEngine(tmp_path, name="t", snapshot_every=None)
    for i in range(4):
        engine.append((i,))
    engine.delete(3)  # the max id is dead: recovery must not reuse it
    engine.close()
    recovered = LogEngine(tmp_path, name="t", snapshot_every=None)
    assert recovered.next_id == 4
    assert recovered.append(("new",)) == 4
    recovered.close()


def test_sharded_recovery_dedups_cross_shard_replace_duplicate(tmp_path):
    """A row id live in two shards after a crash is repaired on recovery.

    A crash between the two per-shard commits of a cross-shard
    ``replace`` can leave the row live in both children; recovery must
    keep exactly one copy (highest-index shard wins, deterministically)
    and durably delete the stale one so ``scan`` never yields a row id
    twice.
    """

    def factory(i):
        return LogEngine(tmp_path / f"s{i}", name="shard", snapshot_every=None)

    first = factory(0)
    first.insert_at(0, ("old", 1))
    first.close()
    second = factory(1)
    second.insert_at(0, ("new", 2))
    second.close()

    obs = obs_mod.Observability()
    engine = ShardedEngine(shards=2, child_factory=factory, obs=obs)
    assert list(engine.scan()) == [(0, ("new", 2))]
    assert len(engine) == 1
    assert obs.metrics.counter("storage.shard.recovered_duplicates").value == 1
    engine.close()

    # the repair was written to the losing shard's log: a second
    # recovery is already clean
    engine2 = ShardedEngine(shards=2, child_factory=factory)
    assert list(engine2.scan()) == [(0, ("new", 2))]
    engine2.close()


def test_named_sharded_engines_do_not_collide_on_gauges():
    obs = obs_mod.Observability()
    employees = ShardedEngine(shards=2, obs=obs, name="emp")
    departments = ShardedEngine(shards=2, obs=obs, name="dept")
    employees.append(("x",))
    employees.append(("y",))
    departments.append(("z",))
    metrics = obs.metrics
    emp = sum(metrics.gauge(f"storage.shard.rows.emp.{i}").value for i in range(2))
    dept = sum(metrics.gauge(f"storage.shard.rows.dept.{i}").value for i in range(2))
    assert (emp, dept) == (2, 1)


# -- one record + one notification per logical operation ---------------------
def test_table_ops_emit_one_wal_record_each(tmp_path):
    table = logged_table(tmp_path)
    table.insert((0, "a", 5))
    table.insert((1, "b", 7))
    table.update_where(lambda row: row["dept"] == "a", {"size": 9})
    table.delete_where(lambda row: row["size"] > 0)
    records = table.engine.wal_records()
    assert [r["kind"] for r in records] == [
        "updategram",
        "updategram",
        "updategram",
        "updategram",
    ]
    # the logical payloads replay to the same grams the table described
    assert records[0]["logical"]["inserts"] == {"items": [[0, "a", 5]]}
    assert records[2]["logical"]["deletes"] == {"items": [[0, "a", 5]]}
    assert records[2]["logical"]["inserts"] == {"items": [[0, "a", 9]]}
    assert records[3]["logical"]["deletes"] == {"items": [[0, "a", 9], [1, "b", 7]]}
    table.close()


def test_no_op_mutations_log_nothing(tmp_path):
    table = logged_table(tmp_path)
    table.insert((0, "a", 5))
    table.delete_where(lambda row: False)
    table.update_where(lambda row: False, {"size": 1})
    table.delete_row(99)
    with pytest.raises(IntegrityError):
        table.insert((0, "a", 6))  # duplicate pk: rejected before logging
    assert len(table.engine.wal_records()) == 1
    table.close()


def test_replace_source_one_record_one_notification(tmp_path):
    store = TripleStore(engine=LogEngine(tmp_path, name="trip", snapshot_every=None))
    notifications = []
    store.subscribe_delta(lambda _store, delta: notifications.append(delta))
    store.add_all([Triple("s1", "p", 1, "u"), Triple("s2", "p", 2, "u")])
    delta = store.replace_source(
        "u", [Triple("s1", "p", 1, "u"), Triple("s3", "p", 3, "u")]
    )
    records = store.engine.wal_records()
    assert [r["kind"] for r in records] == ["delta", "delta"]
    assert len(notifications) == 2
    # the WAL's logical payload IS the delta the subscribers received
    assert decode_delta(records[1]["logical"]) == delta == notifications[1]
    # an unchanged re-publish logs nothing and notifies nobody
    store.replace_source("u", [Triple("s1", "p", 1, "u"), Triple("s3", "p", 3, "u")])
    assert len(store.engine.wal_records()) == 2
    assert len(notifications) == 2
    store.close()


def test_notification_fires_after_wal_commit(tmp_path):
    store = TripleStore(engine=LogEngine(tmp_path, name="trip", snapshot_every=None))
    seen = []
    store.subscribe_delta(
        lambda s, _delta: seen.append(len(s.engine.wal_records()))
    )
    store.add(Triple("s", "p", 1, "u"))
    store.replace_source("u", [Triple("s", "p", 2, "u")])
    assert seen == [1, 2]  # each listener saw its own record already durable
    store.close()


# -- metrics -----------------------------------------------------------------
def test_storage_metrics_reach_shared_registry(tmp_path):
    obs = obs_mod.Observability()
    engine = LogEngine(tmp_path, name="m", snapshot_every=2, obs=obs)
    for i in range(5):
        engine.append((i,))
    engine.close()
    metrics = obs.metrics
    assert metrics.counter("storage.wal.appends").value == 5
    assert metrics.counter("storage.wal.bytes").value > 0
    assert metrics.counter("storage.snapshot.writes").value >= 1
    engine2 = LogEngine(tmp_path, name="m", snapshot_every=None, obs=obs)
    assert metrics.counter("storage.replay.records").value >= 1
    engine2.close()

    sharded = ShardedEngine(shards=2, obs=obs)
    sharded.append(("x",))
    sharded.append(("y",))
    total = sum(
        metrics.gauge(f"storage.shard.rows.{i}").value for i in range(2)
    )
    assert total == 2


def test_default_registry_gets_storage_metrics(tmp_path):
    engine = LogEngine(tmp_path, name="d", snapshot_every=None)
    engine.append((1,))
    engine.close()
    registry = obs_mod.default().metrics
    assert "storage.wal.appends" in registry
    assert registry.counter("storage.wal.appends").value >= 1


# -- codec round trips (hypothesis) ------------------------------------------
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=3).map(tuple),
        st.lists(inner, max_size=3),
    ),
    max_leaves=6,
)
rows = st.lists(values, min_size=1, max_size=4).map(tuple)
hashable_rows = st.lists(
    st.recursive(
        scalars, lambda inner: st.lists(inner, max_size=3).map(tuple), max_leaves=4
    ),
    min_size=1,
    max_size=4,
).map(tuple)
relation_names = st.text(min_size=1, max_size=8)


@given(values)
def test_value_round_trip(value):
    assert decode_value(encode_value(value)) == value


@given(rows)
def test_row_round_trip(row):
    assert decode_row(encode_row(row)) == row


@given(
    st.dictionaries(relation_names, st.lists(hashable_rows, max_size=3), max_size=3),
    st.dictionaries(relation_names, st.lists(hashable_rows, max_size=3), max_size=3),
)
@settings(max_examples=50)
def test_updategram_round_trip(inserts, deletes):
    gram = Updategram()
    for relation, gram_rows in inserts.items():
        gram.insert(relation, gram_rows)
    for relation, gram_rows in deletes.items():
        gram.delete(relation, gram_rows)
    assert decode_updategram(encode_updategram(gram)) == gram


def test_empty_updategram_round_trip():
    assert decode_updategram(encode_updategram(Updategram())) == Updategram()


triples = st.builds(
    Triple,
    subject=st.text(min_size=1, max_size=8),
    predicate=st.text(min_size=1, max_size=8),
    object=st.recursive(
        scalars, lambda inner: st.lists(inner, max_size=3).map(tuple), max_leaves=4
    ),
    source=st.text(max_size=10),
    timestamp=st.integers(min_value=0, max_value=2**31),
)


@given(st.lists(triples, max_size=4), st.lists(triples, max_size=4))
@settings(max_examples=50)
def test_delta_round_trip(added, removed):
    delta = Delta(added=tuple(added), removed=tuple(removed))
    assert decode_delta(encode_delta(delta)) == delta


def test_empty_delta_round_trip():
    assert decode_delta(encode_delta(Delta())) == Delta()


def test_unicode_values_round_trip():
    row = ("κλειδί", "日本語", "emoji 🎉", ("nested", "ключ"), None)
    assert decode_row(encode_row(row)) == row
    gram = Updategram().insert("ρελ", [row])
    assert decode_updategram(encode_updategram(gram)) == gram
    delta = Delta(added=(Triple("σ", "п", "值", "ü", 7),))
    assert decode_delta(encode_delta(delta)) == delta


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=1000), hashable_rows, max_size=5
    ),
)
@settings(max_examples=50)
def test_engine_snapshot_round_trip(row_map):
    next_id = max(row_map, default=-1) + 1
    decoded_rows, decoded_next = decode_engine_snapshot(
        encode_engine_snapshot(row_map, next_id)
    )
    assert decoded_rows == row_map
    assert decoded_next == next_id


@given(
    st.dictionaries(
        relation_names, st.lists(st.text(max_size=6), max_size=3), max_size=3
    ),
    st.dictionaries(
        relation_names, st.sets(hashable_rows, max_size=4), max_size=3
    ),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50)
def test_peer_snapshot_round_trip(stored, data, epoch):
    decoded = decode_peer_snapshot(encode_peer_snapshot(stored, data, epoch))
    assert decoded == (stored, data, epoch)


def test_unencodable_value_raises():
    from repro.storage import StorageError

    with pytest.raises(StorageError):
        encode_value(object())
    with pytest.raises(StorageError):
        decode_value({"weird": []})
