"""JSONL span/metrics exporters and Prometheus text exposition.

The observability pipeline's persistence layer: what the tracer and
registry hold in memory leaves the process here, in formats stable
enough to diff across runs and re-parse losslessly.

**Span records** (``{"type": "span", ...}``, one JSON object per
line).  Each completed root tree flattens to depth-first preorder, so
rebuilding by ``parent_id`` in file order reproduces child order
exactly.  Schema (``SCHEMA_VERSION`` bumps on any breaking change)::

    {"type": "span", "schema": 1, "trace_id": "t3", "span_id": "s41",
     "parent_id": "s40",          # absent for trace roots
     "name": "execute.fetch", "duration_ms": 41.7,
     "attrs": {"peer": "p7"},     # absent when empty
     "error": true}               # absent when false

:func:`assemble_traces` inverts the flattening: records whose parent
is absent from the stream — fragments from another process, truncated
files — become roots of their own, so partial exports still render.
The round trip ``assemble_traces(read_records(export_spans(roots)))``
equals ``[root.to_dict() for root in roots]`` exactly
(``tests/test_obs_export.py`` pins it property-style).

**Metrics records** (``{"type": "counter" | "gauge" | "histogram"}``)
carry full instrument state — histogram bucket populations included,
not just the quantile summary — so :func:`read_metrics` rebuilds a
:class:`~repro.obs.metrics.MetricsRegistry` whose snapshot *and*
quantiles match the original.  ``min``/``max`` are omitted for empty
histograms (they are infinities, which JSON cannot carry).

**Prometheus exposition** (:func:`prometheus_text`): the registry in
the standard text format — ``repro_``-prefixed sanitized names,
``_total`` counters, cumulative ``_bucket{le="..."}`` histogram series
with ``_sum``/``_count`` — pasteable into any Prometheus-compatible
scraper.

The ``python -m repro.obs`` CLI (:mod:`repro.obs.__main__`) renders
all of these from exported files.
"""

from __future__ import annotations

import json
import re
from math import inf

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

#: Bumped on any breaking change to the span/metrics record layout.
SCHEMA_VERSION = 1

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


# -- span export -------------------------------------------------------------
def span_records(roots) -> "list[dict]":
    """Flatten completed root spans to depth-first preorder records.

    Span ids are lazy on the hot path (see
    :meth:`~repro.obs.trace.Span.__enter__`), so exporting assigns any
    still-missing ``span_id``/``trace_id`` here — from the span's own
    tracer, so ids already handed out (message stamping, captured
    contexts) are never reused — and derives implicit parent links
    from the tree walk.  An explicit ``parent_id`` (a span parented
    across a thread or process hop) always wins.
    """
    records: list[dict] = []

    def _flatten(span: Span, trace_id: "str | None",
                 parent_id: "str | None") -> None:
        if span.span_id is None:
            span.span_id = span._tracer._next_span_id()
        if span.trace_id is None:
            span.trace_id = (
                trace_id if trace_id is not None
                else span._tracer._next_trace_id()
            )
        record: dict = {
            "type": "span",
            "schema": SCHEMA_VERSION,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "name": span.name,
            "duration_ms": span.duration_ms,
        }
        linked = span.parent_id if span.parent_id is not None else parent_id
        if linked is not None:
            record["parent_id"] = linked
        if span.attrs:
            record["attrs"] = dict(span.attrs)
        if span.error:
            record["error"] = True
        records.append(record)
        for child in span.children:
            _flatten(child, span.trace_id, span.span_id)

    for root in roots:
        _flatten(root, None, None)
    return records


def export_spans(source, path) -> int:
    """Write ``source``'s spans as JSONL; returns the record count.

    ``source`` is a :class:`~repro.obs.trace.Tracer` (its retained
    roots are exported) or any iterable of completed root spans.
    """
    roots = source.root_list() if isinstance(source, Tracer) else list(source)
    records = span_records(roots)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)


def read_records(path) -> list[dict]:
    """Parse a JSONL export back into its records (blank lines skipped)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def assemble_traces(records, include_ids: bool = False) -> list[dict]:
    """Rebuild nested trace trees from flat span records.

    Returns root nodes shaped exactly like
    :meth:`~repro.obs.trace.Span.to_dict` (plus the id fields when
    ``include_ids``), in first-appearance order.  Because the exporter
    writes depth-first preorder, file order reproduces child order;
    records whose parent is not in the stream become roots (cross-
    process fragments stay visible rather than vanishing).
    """
    nodes: dict[str, dict] = {}
    roots: list[dict] = []
    for record in records:
        if record.get("type") != "span":
            continue
        node: dict = {
            "name": record["name"],
            "duration_ms": record["duration_ms"],
        }
        if record.get("attrs"):
            node["attrs"] = dict(record["attrs"])
        if record.get("error"):
            node["error"] = True
        if include_ids:
            node["trace_id"] = record["trace_id"]
            node["span_id"] = record["span_id"]
            if record.get("parent_id") is not None:
                node["parent_id"] = record["parent_id"]
        nodes[record["span_id"]] = node
        parent = nodes.get(record.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent.setdefault("children", []).append(node)
    return roots


def render_tree(node: dict, indent: int = 0) -> str:
    """Indented ASCII rendering of an assembled dict tree.

    Mirrors :meth:`~repro.obs.trace.Span.render` so a tree read back
    from a JSONL export prints identically to the live span tree.
    """
    duration = node.get("duration_ms")
    duration_text = f"{duration:.3f} ms" if duration is not None else "open"
    attrs = "".join(
        f" {key}={value}" for key, value in (node.get("attrs") or {}).items()
    )
    flag = " !ERROR" if node.get("error") else ""
    lines = [f"{'  ' * indent}- {node['name']} [{duration_text}]{attrs}{flag}"]
    lines.extend(
        render_tree(child, indent + 1) for child in node.get("children") or ()
    )
    return "\n".join(lines)


# -- metrics export ----------------------------------------------------------
def metrics_records(registry: MetricsRegistry) -> list[dict]:
    """Full-state records for every instrument, names sorted."""
    records: list[dict] = []
    for name in sorted(registry._metrics):
        metric = registry._metrics[name]
        if isinstance(metric, Counter):
            records.append({"type": "counter", "schema": SCHEMA_VERSION,
                            "name": name, "value": metric.value})
        elif isinstance(metric, Gauge):
            records.append({"type": "gauge", "schema": SCHEMA_VERSION,
                            "name": name, "value": metric.value})
        else:
            record = {
                "type": "histogram",
                "schema": SCHEMA_VERSION,
                "name": name,
                "bounds": list(metric.bounds),
                "bucket_counts": list(metric.bucket_counts),
                "overflow": metric.overflow,
                "count": metric.count,
                "total": metric.total,
            }
            if metric.count:
                record["min"] = metric.min
                record["max"] = metric.max
            records.append(record)
    return records


def export_metrics(registry: MetricsRegistry, path) -> int:
    """Write the registry as JSONL; returns the record count."""
    records = metrics_records(registry)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)


def registry_from_records(records) -> MetricsRegistry:
    """Rebuild a registry whose state matches the exported one exactly."""
    registry = MetricsRegistry()
    for record in records:
        kind = record.get("type")
        if kind == "counter":
            registry.counter(record["name"]).value = record["value"]
        elif kind == "gauge":
            registry.gauge(record["name"]).value = record["value"]
        elif kind == "histogram":
            histogram = registry.histogram(
                record["name"], tuple(record["bounds"])
            )
            histogram.bucket_counts = list(record["bucket_counts"])
            histogram.overflow = record["overflow"]
            histogram.count = record["count"]
            histogram.total = record["total"]
            histogram.min = record.get("min", inf)
            histogram.max = record.get("max", -inf)
    return registry


def read_metrics(path) -> MetricsRegistry:
    """Read a metrics JSONL export back into a live registry."""
    return registry_from_records(read_records(path))


# -- Prometheus exposition ---------------------------------------------------
def _prom_name(name: str) -> str:
    return "repro_" + _PROM_SANITIZE.sub("_", name)


def _prom_value(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(registry._metrics):
        metric = registry._metrics[name]
        prom = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom}_total counter")
            lines.append(f"{prom}_total {_prom_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(metric.value)}")
        else:
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, bucket in zip(metric.bounds, metric.bucket_counts):
                cumulative += bucket
                lines.append(
                    f'{prom}_bucket{{le="{_prom_value(float(bound))}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{prom}_sum {_prom_value(metric.total)}")
            lines.append(f"{prom}_count {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""


# -- snapshot rendering ------------------------------------------------------
def render_snapshot(snapshot: dict) -> str:
    """An ``explain()``-style report from a snapshot *dict*.

    Accepts the :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    shape (what ``benchmarks/out/*.metrics.json`` and the
    ``BENCH_C*.json`` trajectory files carry), grouped by dotted-name
    prefix like the live report.
    """
    groups: dict[str, list[str]] = {}

    def _add(name: str, line: str) -> None:
        groups.setdefault(name.split(".", 1)[0], []).append(line)

    for name, value in snapshot.get("counters", {}).items():
        _add(name, f"  {name:<44} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        _add(name, f"  {name:<44} {value:g}")
    for name, summary in snapshot.get("histograms", {}).items():
        if not summary.get("count"):
            _add(name, f"  {name:<44} (no samples)")
        else:
            _add(name, (
                f"  {name:<44} n={summary['count']} "
                f"mean={summary['mean']:.3f} p50={summary['p50']:.3f} "
                f"p95={summary['p95']:.3f} p99={summary['p99']:.3f} "
                f"max={summary['max']:.3f}"
            ))
    if not groups:
        return "(no metrics recorded)"
    lines = []
    for prefix in sorted(groups):
        lines.append(f"{prefix}:")
        lines.extend(sorted(groups[prefix]))
    return "\n".join(lines)
