"""Direct tests of the rank-fusion meta-learner combination."""

import numpy as np
import pytest

from repro.corpus.match.learners import BaseLearner, ElementSample
from repro.corpus.match.meta import MetaLearner, _combine


class FixedLearner(BaseLearner):
    """Returns a fixed distribution keyed by the sample's name."""

    def __init__(self, table):
        self.table = table

    def fit(self, samples, labels):
        pass

    def predict(self, sample):
        return dict(self.table.get(sample.name, {}))


class TestCombine:
    def test_rank_fusion_is_scale_free(self):
        # Learner A: diffuse but correct ordering; learner B: one-hot wrong.
        diffuse = {"good": 0.30, "bad": 0.25, "ugly": 0.45}
        onehot = {"good": 1e-9, "bad": 1.0, "ugly": 1e-12}
        combined = _combine(
            np.array([0.6, 0.4]), [diffuse, onehot], ["good", "bad", "ugly"]
        )
        # 'bad' is rank 2 for A and rank 1 for B; 'ugly' rank 1 for A.
        # The magnitudes (1e-9 vs 0.25) never matter, only the ranks.
        ranks_only = _combine(
            np.array([0.6, 0.4]),
            [{"good": 3, "bad": 2, "ugly": 5}, {"good": 1, "bad": 9, "ugly": 0.5}],
            ["good", "bad", "ugly"],
        )
        assert combined == pytest.approx(ranks_only)

    def test_zero_weight_learner_ignored(self):
        a = {"x": 0.9, "y": 0.1}
        b = {"x": 0.0, "y": 1.0}
        combined = _combine(np.array([1.0, 0.0]), [a, b], ["x", "y"])
        assert combined["x"] > combined["y"]

    def test_output_is_distribution(self):
        combined = _combine(
            np.array([0.5, 0.5]),
            [{"x": 0.2, "y": 0.8}, {"x": 0.7, "y": 0.3}],
            ["x", "y"],
        )
        assert sum(combined.values()) == pytest.approx(1.0)

    def test_overconfident_learner_cannot_veto(self):
        # Two learners agree on 'x'; one wild learner is certain of 'z'.
        agree_a = {"x": 0.4, "y": 0.3, "z": 0.3}
        agree_b = {"x": 0.5, "y": 0.25, "z": 0.25}
        wild = {"x": 1e-15, "y": 1e-15, "z": 1.0}
        combined = _combine(
            np.array([0.4, 0.4, 0.2]), [agree_a, agree_b, wild], ["x", "y", "z"]
        )
        assert max(combined, key=combined.get) == "x"


class TestWeightSelection:
    def samples(self):
        names = ["a1", "a2", "b1", "b2", "a3", "b3"]
        labels = ["A", "A", "B", "B", "A", "B"]
        return [ElementSample(n, n, [], []) for n in names], labels

    def test_good_learner_gets_weight(self):
        samples, labels = self.samples()
        # Learner 0 is always right, learner 1 always wrong.
        right = FixedLearner(
            {n: {"A": 0.9, "B": 0.1} if n.startswith("a") else {"A": 0.1, "B": 0.9} for n in "a1 a2 a3 b1 b2 b3".split()}
        )
        wrong = FixedLearner(
            {n: {"A": 0.1, "B": 0.9} if n.startswith("a") else {"A": 0.9, "B": 0.1} for n in "a1 a2 a3 b1 b2 b3".split()}
        )
        meta = MetaLearner([right, wrong], stack_fraction=0.5)
        meta.fit(samples, labels)
        probe = ElementSample("a9", "a9", [], [])
        right.table["a9"] = {"A": 0.9, "B": 0.1}
        wrong.table["a9"] = {"A": 0.1, "B": 0.9}
        prediction = meta.predict(probe)
        assert prediction["A"] > prediction["B"]

    def test_tiny_training_set_falls_back_to_uniform(self):
        learner = FixedLearner({"x": {"A": 1.0}})
        meta = MetaLearner([learner, FixedLearner({})])
        meta.fit([ElementSample("x", "x", [], [])], ["A"])
        assert meta.weights == pytest.approx([0.5, 0.5])

    def test_predict_vector_aligned_with_labels(self):
        samples, labels = self.samples()
        learner = FixedLearner(
            {n: {"A": 0.7, "B": 0.3} for n in "a1 a2 a3 b1 b2 b3".split()}
        )
        meta = MetaLearner([learner])
        meta.fit(samples, labels)
        vector = meta.predict_vector(ElementSample("a1", "a1", [], []))
        assert len(vector) == len(meta.labels) == 2
