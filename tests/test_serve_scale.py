"""Serving-layer scale tests: deltas, atomic publish, incremental views.

The parity contract of PR C13: every incremental path (store ``match``
fast path, hash-join queries, delta-maintained app rows, name-keyed
phone lookup, incremental constraint checking) must be *identical* to
its surviving seed brute-force oracle — row for row — under randomized
publish/edit/remove streams, and a page replace must fire exactly one
delta notification.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.html_gen import (
    edit_page,
    generate_department_site,
    generate_edit_stream,
)
from repro.mangrove import (
    ConstraintChecker,
    DepartmentCalendar,
    NoCleaning,
    PaperDatabase,
    PeriodicCrawler,
    PhoneDirectory,
    PreferOwnPage,
    Publisher,
    SemanticSearch,
    WhoIsWho,
)
from repro.rdf import Delta, GraphQuery, Triple, TriplePattern, TripleStore, Var

ROW_APPS = (DepartmentCalendar, WhoIsWho, PhoneDirectory, PaperDatabase)


def make_page_triples(url: str, rng: random.Random) -> list[Triple]:
    """A random page extraction mixing every entity type the apps serve."""
    triples: list[Triple] = []
    for k in range(rng.randrange(1, 4)):
        kind = rng.choice(["course", "talk", "person", "paper"])
        subject = f"{url}#{kind}-{k}"
        triples.append(Triple(subject, "rdf:type", kind, url))
        properties = {
            "course": [
                ("course.title", ["DB", "OS", "AI", None]),
                ("course.time", ["M 9", "T 10", None]),
                ("course.instructor", ["Pat Smith", "Lee Jones", "A Ghost"]),
            ],
            "talk": [
                ("talk.date", ["2003-01-07", "2003-02-01", None]),
                ("talk.title", ["PDMS", "Chasm"]),
                ("talk.time", ["3pm", None]),
            ],
            "person": [
                ("person.name", ["Pat Smith", "Lee Jones", None]),
                ("person.phone", ["555-1111", "555-2222", None]),
                ("person.email", ["p@uw.edu", None]),
            ],
            "paper": [
                ("paper.title", ["Chasm", "Piazza"]),
                ("paper.author", ["Halevy", "Etzioni"]),
                ("paper.year", ["2003", "2001", None]),
            ],
        }[kind]
        for predicate, choices in properties:
            value = rng.choice(choices)
            if value is not None:
                triples.append(Triple(subject, predicate, value, url))
    return triples


def random_stream(store: TripleStore, rng: random.Random, steps: int, urls):
    """Drive a randomized publish/edit/remove stream, yielding after each."""
    for step in range(steps):
        url = rng.choice(urls)
        roll = rng.random()
        if roll < 0.7:
            store.replace_source(url, make_page_triples(url, rng))
        elif roll < 0.85:
            store.remove_source(url)
        else:
            triples = store.all_triples()
            if triples:
                victim = rng.choice(triples)
                store.remove(victim.subject, victim.predicate, victim.object)
        yield step


class TestDeltaNotifications:
    def test_one_notification_per_publish(self):
        """Regression: the seed notified twice per page replace."""
        store = TripleStore()
        publisher = Publisher(store)
        pages = generate_department_site("http://cs.edu", courses=2, people=1, seed=3)
        for document, _fields in pages:
            publisher.publish(document)
        calendar = DepartmentCalendar(store)
        deltas: list[Delta] = []
        store.subscribe_delta(lambda _s, d: deltas.append(d))
        before = calendar.refresh_count
        document, fields = pages[0]
        edit_page(document, fields, "location", "Sieg 999")
        publisher.publish(document)
        assert len(deltas) == 1  # seed fired remove_source + add_all = 2
        assert calendar.refresh_count == before + 1
        # The delta carries only the changed triples, not the whole page.
        assert len(deltas[0].added) == 1 and len(deltas[0].removed) == 1
        assert deltas[0].added[0].object == "Sieg 999"

    def test_republish_unchanged_page_is_noop(self):
        store = TripleStore()
        publisher = Publisher(store)
        pages = generate_department_site("http://cs.edu", courses=1, people=0, seed=4)
        publisher.publish(pages[0][0])
        app = WhoIsWho(store)
        events: list = []
        store.subscribe(lambda s: events.append(len(s)))
        before = app.refresh_count
        publisher.publish(pages[0][0])  # identical content
        assert events == [] and app.refresh_count == before

    def test_crawler_tick_one_notification_per_changed_page(self):
        store = TripleStore()
        crawler = PeriodicCrawler(store, period=1)
        pages = generate_department_site("http://cs.edu", courses=3, people=0, seed=5)
        for document, _fields in pages:
            crawler.register(document)
        deltas: list[Delta] = []
        store.subscribe_delta(lambda _s, d: deltas.append(d))
        crawler.tick()
        assert len(deltas) == 3  # first crawl: one per (new) page
        document, fields = pages[1]
        edit_page(document, fields, "time", "Daily 6:00")
        crawler.edit(document.url)
        crawler.tick()
        assert len(deltas) == 4  # second crawl: only the edited page notifies

    def test_subscriber_ordering_and_mixed_kinds(self):
        store = TripleStore()
        calls: list[str] = []
        store.subscribe(lambda s: calls.append("legacy-1"))
        store.subscribe_delta(lambda s, d: calls.append("delta-2"))
        store.subscribe(lambda s: calls.append("legacy-3"))
        store.add(Triple("s", "p", 1, "u"))
        assert calls == ["legacy-1", "delta-2", "legacy-3"]

    def test_empty_delta_is_noop_refresh(self):
        store = TripleStore()
        store.add(Triple("p1", "rdf:type", "person", "u"))
        store.add(Triple("p1", "person.name", "Pat", "u"))
        app = WhoIsWho(store)
        before_rows, before_count = list(app.rows), app.refresh_count
        app._on_change(store, Delta())
        assert app.rows == before_rows and app.refresh_count == before_count

    def test_suppressed_add_folds_into_next_delta(self):
        """notify=False defers the delta; stateful subscribers cannot
        desync permanently (they see the triple with the next batch)."""
        store = TripleStore()
        app = WhoIsWho(store)
        store.add(Triple("p1", "rdf:type", "person", "u"), notify=False)
        store.add(Triple("p1", "person.name", "Pat", "u"), notify=False)
        assert app.rows == []  # nothing fired yet
        store.add(Triple("p2", "rdf:type", "person", "v"))
        assert [row["name"] for row in app.rows] == ["Pat"]
        assert app.rows == app.build_rows()

    def test_suppressed_add_removed_before_flush_nets_out(self):
        """A notify=False add that dies before any delta fires must not
        be advertised as added (it would resurrect phantom state in
        stateful subscribers like the attached checker)."""
        store = TripleStore()
        checker = ConstraintChecker(referential={"course.instructor": "person"})
        checker.attach(store)
        events: list[Delta] = []
        store.subscribe_delta(lambda _s, d: events.append(d))
        ghost = store.add(
            Triple("c1", "course.instructor", "Ghost", "u"), notify=False
        )
        store.remove("c1", "course.instructor", "Ghost")
        assert events == []  # add and remove cancelled out entirely
        assert checker.violations() == checker.check_brute_force(store) == []
        # Variant: replace_source drops the suppressed triple but keeps
        # notifying about genuinely removed older rows.
        store.add(Triple("c2", "course.instructor", "Real", "v"))
        store.add(Triple("c2", "course.instructor", "Ghost2", "v"), notify=False)
        store.replace_source("v", ())
        assert checker.violations() == checker.check_brute_force(store) == []
        flushed = events[-1]
        assert ghost.spo() not in {t.spo() for t in flushed.added}

    def test_replace_source_keeps_unchanged_timestamps(self):
        store = TripleStore()
        stamped = store.add(Triple("s", "p", "kept", "u"))
        store.add(Triple("s", "q", "old", "u"))
        delta = store.replace_source(
            "u", [Triple("s", "p", "kept", "u"), Triple("s", "q", "new", "u")]
        )
        assert {t.object for t in delta.removed} == {"old"}
        assert {t.object for t in delta.added} == {"new"}
        kept = next(store.match("s", "p"))
        assert kept.timestamp == stamped.timestamp


class TestStoreFastPaths:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["s1", "s2", "s3"]),
                st.sampled_from(["p1", "p2"]),
                st.integers(0, 3),
                st.sampled_from(["u1", "u2"]),
            ),
            max_size=25,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40)
    def test_match_equals_python_filter_all_bindings(self, rows, rnd):
        store = TripleStore()
        store.add_all([Triple(s, p, o, u) for s, p, o, u in rows])
        # Interleave deletions so index buckets have holes.
        for s, p, o, _u in rows[::3]:
            if rnd.random() < 0.5:
                store.remove(s, p, o)
        reference = [(t.subject, t.predicate, t.object, t.source) for t in store.match()]
        for subject in (None, "s1", "s2"):
            for predicate in (None, "p1"):
                for obj in (None, 2):
                    for source in (None, "u1"):
                        got = [
                            (t.subject, t.predicate, t.object, t.source)
                            for t in store.match(subject, predicate, obj, source)
                        ]
                        expected = [
                            row
                            for row in reference
                            if (subject is None or row[0] == subject)
                            and (predicate is None or row[1] == predicate)
                            and (obj is None or row[2] == obj)
                            and (source is None or row[3] == source)
                        ]
                        assert got == expected  # values AND scan order

    def test_remove_source_via_index(self):
        store = TripleStore()
        store.add_all([Triple("a", "p", i, "u1") for i in range(3)])
        store.add_all([Triple("b", "p", i, "u2") for i in range(2)])
        assert store.remove_source("u1") == 3
        assert store.remove_source("missing") == 0
        assert len(store) == 2 and store.sources() == {"u2"}


class TestGraphQueryHashJoin:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.sampled_from(["p", "q", "name"]),
                st.sampled_from(["a", "b", "x", "y"]),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_hash_join_equals_brute_force(self, rows):
        store = TripleStore()
        store.add_all([Triple(s, p, o) for s, p, o in rows])
        queries = [
            GraphQuery([TriplePattern(Var("s"), "p", Var("o"))]),
            GraphQuery(
                [
                    TriplePattern(Var("s"), "p", Var("o")),
                    TriplePattern(Var("o"), "q", Var("z")),
                ]
            ),
            GraphQuery(
                [
                    TriplePattern(Var("s"), "p", Var("o")),
                    TriplePattern(Var("s"), "name", Var("n")),
                    TriplePattern(Var("other"), "q", Var("n")),
                ]
            ),
            GraphQuery([TriplePattern(Var("x"), "p", Var("x"))]),  # self-join
            GraphQuery(
                [  # cartesian: no shared variables
                    TriplePattern(Var("s"), "p", Var("o")),
                    TriplePattern(Var("s2"), "q", Var("o2")),
                ]
            ),
        ]
        def canonical(bindings):
            return sorted(tuple(sorted(b.items())) for b in bindings)

        for query in queries:
            assert canonical(query.run(store)) == canonical(query.run_brute_force(store))

    def test_limit_returns_exact_seed_subset(self):
        store = TripleStore()
        store.add_all(
            [Triple(f"s{i}", "p", f"o{i % 3}") for i in range(10)]
            + [Triple(f"o{i}", "q", i) for i in range(3)]
        )
        query = GraphQuery(
            [
                TriplePattern(Var("s"), "p", Var("o")),
                TriplePattern(Var("o"), "q", Var("z")),
            ],
            limit=3,
        )
        # With a limit, run() must return the seed's exact row subset,
        # not just any 3 rows of the join.
        assert query.run(store) == query.run_brute_force(store)
        assert len(query.run(store)) == 3

    def test_select_distinct_filters_match_brute(self):
        store = TripleStore()
        store.add_all(
            [
                Triple("c1", "course.instructor", "smith"),
                Triple("c2", "course.instructor", "smith"),
                Triple("smith", "person.name", "Pat Smith"),
            ]
        )
        query = GraphQuery(
            [
                TriplePattern(Var("c"), "course.instructor", Var("i")),
                TriplePattern(Var("i"), "person.name", Var("n")),
            ],
            select=["i", "n"],
            distinct=True,
        ).where(lambda b: "Pat" in str(b["n"]))
        assert query.run(store) == query.run_brute_force(store) == [
            {"i": "smith", "n": "Pat Smith"}
        ]


class TestPhoneDirectoryLookup:
    def test_lookup_served_from_dict(self):
        store = TripleStore()
        directory = PhoneDirectory(store)
        store.add_all(
            [
                Triple("u#person-1", "rdf:type", "person", "http://u"),
                Triple("u#person-1", "person.name", "Pat", "http://u"),
                Triple("u#person-1", "person.phone", "555-1", "http://u"),
            ]
        )
        assert directory.lookup("Pat") == "555-1"
        assert directory.lookup("Nobody") is None
        store.remove_source("http://u")
        assert directory.lookup("Pat") is None

    def test_lookup_duplicate_names_first_row_wins(self):
        store = TripleStore()
        directory = PhoneDirectory(store, policy=NoCleaning())
        # Two distinct people sharing a name; rows sort by (name, subject).
        store.add_all(
            [
                Triple("a#person-1", "rdf:type", "person", "a"),
                Triple("a#person-1", "person.name", "Pat", "a"),
                Triple("a#person-1", "person.phone", "111", "a"),
                Triple("b#person-1", "rdf:type", "person", "b"),
                Triple("b#person-1", "person.name", "Pat", "b"),
                Triple("b#person-1", "person.phone", "222", "b"),
            ]
        )
        linear = next(r["phone"] for r in directory.rows if r["name"] == "Pat")
        assert directory.lookup("Pat") == linear == "111"
        store.remove_source("a")
        assert directory.lookup("Pat") == "222"

    def test_cleaning_policy_difference_under_deltas(self):
        """NoCleaning vs PreferOwnPage on conflicting sources, maintained
        incrementally as the conflicting source comes and goes."""
        store = TripleStore()
        trusting = PhoneDirectory(store, policy=NoCleaning())
        own_page = PhoneDirectory(store)  # PreferOwnPage default
        subject = "http://cs.edu/~smith#person-1"
        store.add_all(
            [
                Triple(subject, "rdf:type", "person", "http://cs.edu/~smith"),
                Triple(subject, "person.name", "Smith", "http://cs.edu/~smith"),
                Triple(subject, "person.phone", "555-9999", "http://evil.com/x"),
            ]
        )
        # Only the third-party value exists: both believe it.
        assert trusting.lookup("Smith") == own_page.lookup("Smith") == "555-9999"
        store.add(Triple(subject, "person.phone", "555-1111", "http://cs.edu/~smith/contact"))
        assert trusting.lookup("Smith") == "555-9999"  # first-seen survives
        assert own_page.lookup("Smith") == "555-1111"  # own page overrides
        store.remove_source("http://cs.edu/~smith/contact")
        assert own_page.lookup("Smith") == "555-9999"  # falls back again
        for app in (trusting, own_page):
            assert app.rows == app.build_rows()


class TestIncrementalParity:
    URLS = [f"http://site/{i}" for i in range(10)]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_apps_and_checker_match_brute_force_under_random_stream(self, seed):
        rng = random.Random(seed)
        store = TripleStore()
        apps = [cls(store) for cls in ROW_APPS]
        checker = ConstraintChecker(
            single_valued={"person.phone", "course.time"},
            required={"course": {"course.title", "course.time"}},
            referential={"course.instructor": "person"},
        )
        checker.attach(store)
        for step in random_stream(store, rng, steps=120, urls=self.URLS):
            for app in apps:
                assert app.rows == app.build_rows(), (step, type(app).__name__)
            assert checker.violations() == checker.check_brute_force(store), step

    def test_semantic_search_incremental_index_matches_rebuild(self):
        rng = random.Random(7)
        store = TripleStore()
        search = SemanticSearch(store)
        for step in random_stream(store, rng, steps=60, urls=self.URLS):
            oracle = SemanticSearch(store)  # fresh full rebuild
            assert search.rows == oracle.rows, step
            for query in ("Chasm", "Pat Smith", "PDMS 2003"):
                got = [(r.subject, r.score, r.type_name) for r in search.search(query)]
                expected = [
                    (r.subject, r.score, r.type_name) for r in oracle.search(query)
                ]
                assert got == expected, (step, query)

    def test_brute_mode_apps_still_refresh_per_batch(self):
        store = TripleStore()
        app = WhoIsWho(store, incremental=False)
        before = app.refresh_count
        store.add_all(
            [
                Triple("p", "rdf:type", "person", "u"),
                Triple("p", "person.name", "Pat", "u"),
            ]
        )
        assert app.refresh_count == before + 1
        assert app.rows and app.rows == app.build_rows()

    def test_edit_stream_workload_is_deterministic(self):
        pages = generate_department_site("http://cs.edu", courses=4, people=3, seed=9)
        again = generate_department_site("http://cs.edu", courses=4, people=3, seed=9)
        stream = generate_edit_stream(pages, edits=20, seed=11)
        assert stream == generate_edit_stream(again, edits=20, seed=11)
        store = TripleStore()
        publisher = Publisher(store)
        for document, _fields in pages:
            publisher.publish(document)
        deltas: list[Delta] = []
        store.subscribe_delta(lambda _s, d: deltas.append(d))
        for at, field, value in stream:
            document, fields = pages[at]
            edit_page(document, fields, field, value)
            publisher.publish(document)
        assert len(deltas) == len(stream)  # every edit changes the page
        assert all(deltas)
