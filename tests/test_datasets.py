"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets import (
    PerturbationConfig,
    chain_pdms,
    figure2_pdms,
    make_university_corpus,
    people_schema_instance,
    perturb_schema,
    publications_schema_instance,
    random_tree_pdms,
    star_pdms,
    university_schema_instance,
)
from repro.datasets.dirty import ground_truth, inject_conflicts, score_policy
from repro.datasets.html_gen import (
    annotate_course_page,
    generate_course_page,
    generate_department_site,
    generate_person_page,
)
from repro.datasets.perturb import matching_pair
from repro.mangrove.cleaning import NoCleaning, PreferOwnPage
from repro.rdf import Triple, TripleStore
from repro.text.synonyms import italian_english_dictionary


class TestDomainGenerators:
    def test_university_deterministic(self):
        a = university_schema_instance(seed=9, courses=10)
        b = university_schema_instance(seed=9, courses=10)
        assert a.data == b.data

    def test_university_shape(self):
        schema = university_schema_instance(courses=10)
        assert set(schema.relations) == {"department", "instructor", "course", "ta"}
        assert len(schema.data["course"]) == 10
        assert schema.row_count() > 10

    def test_people_and_publications(self):
        people = people_schema_instance(persons=5)
        assert len(people.data["person"]) == 5
        pubs = publications_schema_instance(papers=5)
        assert len(pubs.data["paper"]) == 5
        assert all(1995 <= row[3] <= 2003 for row in pubs.data["paper"])


class TestPerturbation:
    def test_gold_covers_kept_elements(self):
        reference = university_schema_instance(seed=1, courses=5)
        variant, gold = perturb_schema(reference, "v", seed=1)
        variant_paths = {e.path for e in variant.elements()}
        assert set(gold.values()) <= variant_paths

    def test_rename_zero_is_restyle_only(self):
        reference = university_schema_instance(seed=1, courses=5)
        config = PerturbationConfig(rename_probability=0.0, restyle=False)
        variant, gold = perturb_schema(reference, "v", seed=1, config=config)
        assert gold["course.title"] == "course.title"

    def test_higher_level_renames_more(self):
        reference = university_schema_instance(seed=1, courses=5)
        low, gold_low = perturb_schema(
            reference, "lo", seed=3,
            config=PerturbationConfig(rename_probability=0.1, restyle=False),
        )
        high, gold_high = perturb_schema(
            reference, "hi", seed=3,
            config=PerturbationConfig(rename_probability=0.9, restyle=False),
        )
        changed_low = sum(1 for k, v in gold_low.items() if k != v)
        changed_high = sum(1 for k, v in gold_high.items() if k != v)
        assert changed_high > changed_low

    def test_translation(self):
        reference = university_schema_instance(seed=1, courses=5)
        config = PerturbationConfig(
            rename_probability=1.0,
            use_synonyms=False,
            use_abbreviations=False,
            translation=italian_english_dictionary(),
            restyle=False,
        )
        variant, gold = perturb_schema(reference, "v", seed=2, config=config)
        # English reference terms are translated into Italian ones.
        assert gold["course.title"] == "corso.titolo"

    def test_drop_attributes(self):
        reference = university_schema_instance(seed=1, courses=5)
        config = PerturbationConfig(drop_attribute_probability=0.5)
        variant, gold = perturb_schema(reference, "v", seed=5, config=config)
        reference_attrs = sum(len(a) for a in reference.relations.values())
        kept_attrs = sum(1 for path in gold if "." in path)
        assert kept_attrs < reference_attrs

    def test_noise_attributes(self):
        reference = university_schema_instance(seed=1, courses=5)
        config = PerturbationConfig(noise_attributes=2)
        variant, _gold = perturb_schema(reference, "v", seed=1, config=config)
        for attributes in variant.relations.values():
            assert "extra0" in attributes and "extra1" in attributes

    def test_split_widest_relation(self):
        reference = university_schema_instance(seed=1, courses=5)
        config = PerturbationConfig(
            rename_probability=0.0, restyle=False, split_widest_relation=True
        )
        variant, gold = perturb_schema(reference, "v", seed=1, config=config)
        assert "course_details" in variant.relations
        moved = [v for v in gold.values() if v.startswith("course_details.")]
        assert moved

    def test_data_preserved_for_kept_columns(self):
        reference = university_schema_instance(seed=1, courses=5)
        config = PerturbationConfig(rename_probability=0.3, restyle=False)
        variant, gold = perturb_schema(reference, "v", seed=1, config=config)
        original_titles = reference.column_values("course.title")
        variant_titles = variant.column_values(gold["course.title"])
        assert original_titles == variant_titles

    def test_matching_pair_gold_is_attribute_level(self):
        reference = university_schema_instance(seed=6, courses=5)
        left, right, gold = matching_pair(reference, seed=6, level=0.4)
        assert gold
        left_paths = {e.path for e in left.elements()}
        right_paths = {e.path for e in right.elements()}
        assert set(gold) <= left_paths
        assert set(gold.values()) <= right_paths


class TestCorpusGenerator:
    def test_corpus_size_and_mappings(self):
        corpus = make_university_corpus(count=5, seed=1, courses=5)
        assert len(corpus) == 5
        assert len(corpus.mappings) == 4  # consecutive variants

    def test_corpus_mappings_are_valid_paths(self):
        corpus = make_university_corpus(count=4, seed=1, courses=5)
        for record in corpus.mappings:
            source_paths = {e.path for e in corpus.get(record.source_schema).elements()}
            target_paths = {e.path for e in corpus.get(record.target_schema).elements()}
            for source, target in record.correspondences:
                assert source in source_paths
                assert target in target_paths


class TestPdmsGenerators:
    def test_chain_connectivity_and_answers(self):
        pdms = chain_pdms(3, seed=1, courses=3)
        assert pdms.reachable_from("p0") == {"p0", "p1", "p2"}
        # The chain mappings are exact: every peer sees every course.
        course_rel = next(
            rel for rel in pdms.peers["p0"].schema if "course" in rel or True
        )
        # Query p0's course-like relation by finding it via gold naming.
        relations = pdms.peers["p0"].schema
        target = max(relations, key=lambda r: len(relations[r]))
        arity = len(relations[target])
        variables = ", ".join(f"?v{i}" for i in range(arity))
        answers = pdms.answer(
            f"q(?v1) :- p0.{target}({variables})", max_depth=24, max_rule_uses=3
        )
        assert len(answers) >= 3  # at least own courses visible

    def test_star_shape(self):
        pdms = star_pdms(4, seed=1, courses=2)
        graph = pdms.mapping_graph()
        assert len(graph["p0"]) == 3
        assert all(len(graph[f"p{i}"]) == 1 for i in range(1, 4))

    def test_random_tree_connected(self):
        pdms = random_tree_pdms(6, seed=3, courses=2)
        assert pdms.reachable_from("p0") == set(pdms.peers)

    def test_figure2_topology(self):
        pdms = figure2_pdms(seed=1, courses=2)
        assert set(pdms.peers) == {
            "stanford", "berkeley", "mit", "oxford", "roma", "tsinghua",
        }
        assert pdms.mapping_count() == 6 * len(
            university_schema_instance(courses=1).relations
        )
        assert pdms.reachable_from("tsinghua") == set(pdms.peers)


class TestHtmlGeneration:
    def test_pages_deterministic(self):
        a, fields_a = generate_course_page("u", seed=4)
        b, fields_b = generate_course_page("u", seed=4)
        assert a.html == b.html and fields_a == fields_b

    def test_annotation_roundtrip(self):
        doc, fields = generate_course_page("http://x/c", seed=7)
        annotate_course_page(doc, fields)
        triples = doc.to_triples()
        values = {t.predicate: t.object for t in triples if t.predicate != "rdf:type"}
        assert values["course.title"] == fields["title"]
        assert values["course.instructor"] == fields["instructor"]

    def test_department_site(self):
        pages = generate_department_site("http://dept", courses=3, people=2, seed=1)
        assert len(pages) == 5
        assert all(doc.annotations() for doc, _fields in pages)

    def test_person_page(self):
        doc, fields = generate_person_page("http://x/~p", seed=2)
        assert fields["name"] in doc.html


class TestDirtyData:
    def seed_store(self):
        store = TripleStore()
        for i in range(10):
            subject = f"http://cs.edu/~p{i}#person-1"
            store.add(Triple(subject, "rdf:type", "person", f"http://cs.edu/~p{i}"))
            store.add(Triple(subject, "person.phone", f"555-000{i}", f"http://cs.edu/~p{i}"))
        return store

    def test_ground_truth(self):
        store = self.seed_store()
        truth = ground_truth(store, {"person.phone"})
        assert len(truth) == 10

    def test_injection_rate(self):
        store = self.seed_store()
        report = inject_conflicts(store, {"person.phone"}, rate=1.0, seed=1)
        assert report.injected >= 10

    def test_zero_rate_injects_nothing(self):
        store = self.seed_store()
        report = inject_conflicts(store, {"person.phone"}, rate=0.0, seed=1)
        assert report.injected == 0

    def test_policies_scored(self):
        store = self.seed_store()
        report = inject_conflicts(store, {"person.phone"}, rate=0.8, seed=2)
        own = score_policy(store, PreferOwnPage(), report.truth)
        none = score_policy(store, NoCleaning(), report.truth)
        assert own["accuracy"] == 1.0  # own page always wins
        assert none["accuracy"] < 1.0  # conflicts leak through
