"""Experiment C11 — the Piazza PDMS query path at scale.

The claim under test: the PDMS "crosses the chasm" only if query
answering stays tractable as the peer network grows (Section 3's
"network of mappings" vision).  The seed's path — per-call rule-lookup
rebuilds, quadratic nested-loop UCQ minimization, per-relation network
round trips, nested-loop joins — is fine for the 5-10 peer tests and
hopeless for the hundreds-of-peers networks ``pdms_gen`` generates.
The scale layer (PR C11) re-applies the C10 index-accelerate-and-
prove-parity pattern to the PDMS hot path:

* :class:`~repro.piazza.mapping_index.MappingIndex` — cached by-head
  rule lookup + relevance closure (dead mapping paths pruned up front);
* hash-join datalog evaluation with shared tables across the union
  (:func:`~repro.piazza.datalog.evaluate_union`);
* candidate-filtered UCQ minimization
  (:func:`~repro.piazza.datalog.minimize_union`);
* per-peer batched fetches in
  :meth:`~repro.piazza.execution.DistributedExecutor.execute`.

Reported per scale: combined reformulation+execution latency for the
brute-force (seed) and scale paths, with parity asserted on answers and
rewriting sets.  Acceptance bar: >= 10x at 200 peers.  The join
workload additionally shows the quadratic minimization cliff: the
brute path is measured where it terminates in reasonable time (20
peers — already ~minutes-scale territory at 50) and the scale path is
reported alone beyond that.
"""

import time

from repro.bench import ResultTable
from repro.datasets.pdms_gen import random_tree_pdms
from repro.piazza import DistributedExecutor

SINGLE_SCALES = (50, 200, 500)
JOIN_SCALES = (20, 50, 200)
JOIN_BRUTE_LIMIT = 20  # largest join network the seed path can finish
DATALESS_SHARE = 5  # one schema-only peer per 5 data peers
OPTIONS = {"max_depth": 40}


def _network(peers: int):
    return random_tree_pdms(
        peers, seed=3, courses=4, dataless_peers=peers // DATALESS_SHARE
    )


def _queries(pdms) -> dict[str, str]:
    gold = pdms.generator_info["golds"]["p0"]
    course, instructor = gold["course"], gold["instructor"]
    single = f"q(?t) :- p0.{course}(?c, ?t, ?n, ?w, ?l, ?en, ?d)"
    join = (
        f"q(?t, ?e) :- p0.{course}(?c, ?t, ?n, ?w, ?l, ?en, ?d), "
        f"p0.{instructor}(?i, ?n, ?e, ?ph, ?o)"
    )
    return {"single": single, "join": join}


def _rewriting_fingerprints(result) -> set:
    return {rewriting.canonical() for rewriting in result.rewritings}


def _best_of(runs: int, action):
    """Best wall-clock of ``runs`` calls (de-flakes shared-CI timings).

    Returns (milliseconds, last result).
    """
    best_ms, result = float("inf"), None
    for _ in range(runs):
        started = time.perf_counter()
        result = action()
        best_ms = min(best_ms, (time.perf_counter() - started) * 1000.0)
    return best_ms, result


class TestC11PdmsScale:
    def test_single_atom_scale(self):
        table = ResultTable(
            "C11: single-relation query, brute-force vs scale path",
            ["peers", "rules", "dead rules", "index build (ms)",
             "brute ref+exec (ms)", "scale ref+exec (ms)", "speedup"],
        )
        speedups: dict[int, float] = {}
        for peers in SINGLE_SCALES:
            pdms = _network(peers)
            started = time.perf_counter()
            index = pdms.mapping_index()
            build_ms = (time.perf_counter() - started) * 1000.0
            query = _queries(pdms)["single"]
            executor = DistributedExecutor(pdms)

            # Best-of-N keeps a shared-runner scheduling stall on one
            # measurement from flipping the speedup assertion; the brute
            # path at 500 peers is too slow to repeat.
            brute_ms, brute = _best_of(
                1 if peers >= 500 else 2,
                lambda: executor.execute_brute_force(
                    query, at_peer="p0", reformulation_options=dict(OPTIONS)
                ),
            )
            scale_ms, scaled = _best_of(
                3,
                lambda: executor.execute(
                    query, at_peer="p0", reformulation_options=dict(OPTIONS)
                ),
            )

            # Parity: identical certain answers and rewriting sets.
            assert scaled.answers == brute.answers
            assert _rewriting_fingerprints(
                pdms.reformulate(query, **OPTIONS)
            ) == _rewriting_fingerprints(
                pdms.reformulate_brute_force(query, **OPTIONS)
            )

            speedups[peers] = brute_ms / scale_ms
            snapshot = index.stats_snapshot()
            table.add_row(
                peers, snapshot["rules"], snapshot["dead_rules"], build_ms,
                brute_ms, scale_ms, speedups[peers],
            )
        table.note(
            "identical answers and rewriting fingerprints asserted per scale; "
            "acceptance bar is >=10x combined reformulation+execution at 200 "
            "peers"
        )
        table.show()
        assert speedups[200] >= 10.0

    def test_join_query_scale(self):
        table = ResultTable(
            "C11b: two-relation join query (the quadratic-minimization cliff)",
            ["peers", "rewritings", "brute ref+exec (ms)",
             "scale ref+exec (ms)", "speedup"],
        )
        for peers in JOIN_SCALES:
            pdms = _network(peers)
            pdms.mapping_index()
            query = _queries(pdms)["join"]
            executor = DistributedExecutor(pdms)

            started = time.perf_counter()
            scaled = executor.execute(
                query, at_peer="p0", reformulation_options=dict(OPTIONS)
            )
            scale_ms = (time.perf_counter() - started) * 1000.0
            rewritings = len(pdms.reformulate(query, **OPTIONS).rewritings)

            if peers <= JOIN_BRUTE_LIMIT:
                started = time.perf_counter()
                brute = executor.execute_brute_force(
                    query, at_peer="p0", reformulation_options=dict(OPTIONS)
                )
                brute_ms = (time.perf_counter() - started) * 1000.0
                assert scaled.answers == brute.answers
                table.add_row(
                    peers, rewritings, brute_ms, scale_ms, brute_ms / scale_ms
                )
                assert brute_ms / scale_ms >= 10.0
            else:
                table.add_row(peers, rewritings, "DNF (hours)", scale_ms, "--")
        table.note(
            "brute-force minimization is quadratic in the rewriting count "
            "with a nested-loop containment check inside every test; beyond "
            f"{JOIN_BRUTE_LIMIT} peers it does not finish in benchmark time "
            "(measured: ~24 s at 30 peers, extrapolating quadratically to "
            "hours at 200), so only the scale path is reported there"
        )
        table.show()

    def test_execution_batching(self):
        # One round trip per remote peer vs one per stored relation: the
        # join workload touches two relations per peer, so the batched
        # executor halves messages and the per-message latency share.
        # ``minimize=False`` isolates batching from the minimization
        # cliff (C11b) so the brute path terminates at this scale.
        pdms = _network(50)
        query = _queries(pdms)["join"]
        options = dict(OPTIONS, minimize=False)
        executor = DistributedExecutor(pdms)
        scaled = executor.execute(
            query, at_peer="p0", reformulation_options=dict(options)
        )
        brute = executor.execute_brute_force(
            query, at_peer="p0", reformulation_options=dict(options)
        )
        table = ResultTable(
            "C11c: network cost of one join query at 50 peers",
            ["path", "messages", "peers contacted", "tuples shipped",
             "simulated latency (ms)"],
        )
        table.add_row("per-relation (brute)", brute.messages,
                      brute.peers_contacted, brute.tuples_shipped,
                      brute.latency_ms)
        table.add_row("batched per peer", scaled.messages,
                      scaled.peers_contacted, scaled.tuples_shipped,
                      scaled.latency_ms)
        table.show()
        assert scaled.answers == brute.answers
        assert scaled.peers_contacted == brute.peers_contacted
        assert scaled.messages == brute.messages / 2
        assert scaled.latency_ms < brute.latency_ms
