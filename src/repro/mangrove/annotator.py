"""The annotation "graphical tool", as an API.

Section 2.1: "The tool displays a rendered version of the HTML document
alongside a tree view of a schema ... Users highlight portions of the
HTML document, then annotate by choosing a corresponding tag name from
the schema."  :class:`AnnotationSession` is that workflow without the
pixels: the rendered view, the schema tree, highlight + tag, and an
explicit publish step that immediately refreshes the applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mangrove.annotation import AnnotatedDocument, AnnotationError
from repro.mangrove.publish import Publisher
from repro.mangrove.schema import LightweightSchema


@dataclass
class AnnotationSession:
    """One user annotating one page against one schema."""

    document: AnnotatedDocument
    schema: LightweightSchema
    publisher: Publisher | None = None
    history: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.document.schema = self.schema

    # -- what the user sees -------------------------------------------------
    def rendered(self) -> str:
        """The rendered page text (markers and markup hidden)."""
        return self.document.rendered_text()

    def schema_tree(self) -> list[str]:
        """The schema paths shown in the tree view."""
        return self.schema.paths()

    def suggest_tags(self, highlighted_text: str, limit: int = 5) -> list[str]:
        """Tag suggestions for a highlighted snippet (auto-complete)."""
        return self.schema.suggest(highlighted_text, limit=limit)

    # -- annotating ------------------------------------------------------------
    def highlight_and_tag(self, text: str, tag_path: str, occurrence: int = 1) -> int:
        """Annotate the given visible text with a schema tag."""
        if not self.schema.is_valid_path(tag_path):
            raise AnnotationError(
                f"tag {tag_path!r} is not in schema {self.schema.name!r}; "
                f"try one of {self.suggest_tags(tag_path)}"
            )
        annotation_id = self.document.annotate_text(text, tag_path, occurrence)
        self.history.append(annotation_id)
        return annotation_id

    def undo(self) -> bool:
        """Remove the most recent annotation."""
        if not self.history:
            return False
        return self.document.remove_annotation(self.history.pop())

    # -- instant gratification ----------------------------------------------------
    def publish(self) -> int:
        """Publish: push the page's triples to the repository *now*.

        Returns the number of triples published.  Applications that
        subscribed to the store refresh immediately — this is the
        feedback loop Section 2.2 describes.
        """
        if self.publisher is None:
            raise AnnotationError("session has no publisher configured")
        return self.publisher.publish(self.document)

    def annotation_count(self) -> int:
        """How many annotations the page currently carries."""
        return len(self.document.annotations())
