"""DESIGNADVISOR (Section 4.3.1): corpus-assisted schema authoring.

Given a fragment ``(S, D)`` — a partial schema with optional data — the
advisor returns a ranked list of corpus schemas ``S'`` each with a
mapping of ``S`` into ``S'``, scored by the paper's template::

    sim(S', (S, D)) = alpha * fit(S', S, D) + beta * preference(S')

``fit`` has two modes (benchmark C7 sweeps both):

* ``fit_mode="paper"`` — the paper's definition verbatim: "the ratio
  between the total number of mappings between S' and S and the total
  number of elements of S' and S" (scaled by 2 so a perfect match of
  equal-sized schemas scores 1.0);
* ``fit_mode="coverage"`` (default) — matched fraction *of the
  fragment* only.  Reproduction finding: the paper's symmetric ratio
  penalizes large complete schemas — the very schemas the tool exists
  to propose (S' is supposed to model a *superset* of S) — so a small
  wrong-domain schema of the fragment's shape can outrank the right
  domain's full schema.  Coverage fixes that; the conciseness component
  of ``preference`` still rewards smaller supersets.

``preference`` combines how commonly the schema's shape occurs in the
corpus, its conciseness relative to the fragment, and an optional
standards bonus.

The advisor also provides the two interactive behaviours of the
walkthrough: attribute **auto-complete** ("similar to other
auto-complete features") and **layout advice** (the TA anecdote: "in
similar schemas at most other universities, TA information has been
modeled in a table separate from the course table").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.composite import CompositeStatistics
from repro.corpus.match.base import MatchResult
from repro.corpus.match.matchers import HybridMatcher, PairwiseMatcher
from repro.corpus.model import Corpus, CorpusSchema
from repro.corpus.stats import BasicStatistics, StatisticsOptions


@dataclass
class SchemaProposal:
    """One ranked proposal: a corpus schema plus the fragment mapping."""

    schema: CorpusSchema
    score: float
    fit: float
    preference: float
    mapping: MatchResult


@dataclass
class LayoutAdvice:
    """Advice to move an attribute group into its own relation."""

    relation: str
    attributes: frozenset
    suggested_relation_name: str
    support: int

    def __str__(self) -> str:
        attrs = ", ".join(sorted(self.attributes))
        return (
            f"in similar schemas, [{attrs}] is usually modeled in a separate "
            f"'{self.suggested_relation_name}' table rather than inside "
            f"'{self.relation}' (seen {self.support}x in the corpus)"
        )


class DesignAdvisor:
    """The schema-authoring assistant over a corpus."""

    def __init__(
        self,
        corpus: Corpus,
        alpha: float = 0.7,
        beta: float = 0.3,
        matcher: PairwiseMatcher | None = None,
        options: StatisticsOptions | None = None,
        standards: dict[str, float] | None = None,
        match_threshold: float = 0.45,
        fit_mode: str = "coverage",
    ):  # noqa: D107
        from repro.text import default_synonyms

        if fit_mode not in ("coverage", "paper"):
            raise ValueError(f"unknown fit_mode {fit_mode!r}")
        self.corpus = corpus
        self.alpha = alpha
        self.beta = beta
        self.matcher = matcher or HybridMatcher(synonyms=default_synonyms())
        self.options = options or StatisticsOptions(synonyms=default_synonyms())
        self.standards = standards or {}
        self.match_threshold = match_threshold
        self.fit_mode = fit_mode
        self.stats = BasicStatistics(corpus, self.options)
        self.composite = CompositeStatistics(corpus, self.options)

    # -- ranked schema proposals ----------------------------------------------
    def _fit(self, fragment: CorpusSchema, candidate: CorpusSchema, mapping: MatchResult) -> float:
        matched = len(mapping.filter(self.match_threshold))
        if self.fit_mode == "paper":
            total = fragment.size() + candidate.size()
            return 2.0 * matched / total if total else 0.0
        fragment_attributes = len(fragment.attribute_paths())
        return matched / fragment_attributes if fragment_attributes else 0.0

    def _popularity(self, candidate: CorpusSchema) -> float:
        """Fraction of corpus schemas sharing most relation concepts.

        Served by the search engine's relation-concept postings (only
        schemas sharing a concept can clear the 0.5 Jaccard bar) with
        an LRU cache — ``propose`` re-scores every candidate, so the
        corpus-wide scan this replaces was quadratic per proposal run.
        """
        return self.stats.engine.schema_popularity(candidate.name)

    def _conciseness(self, fragment: CorpusSchema, candidate: CorpusSchema) -> float:
        """Smaller supersets are preferred over sprawling ones."""
        if candidate.size() == 0:
            return 0.0
        return min(1.0, fragment.size() / candidate.size())

    def _preference(self, fragment: CorpusSchema, candidate: CorpusSchema) -> float:
        bonus = self.standards.get(candidate.name, 0.0)
        return min(
            1.0,
            0.5 * self._popularity(candidate)
            + 0.5 * self._conciseness(fragment, candidate)
            + bonus,
        )

    def propose(self, fragment: CorpusSchema, limit: int = 5) -> list[SchemaProposal]:
        """Ranked corpus schemas for the fragment, each with its mapping."""
        proposals: list[SchemaProposal] = []
        for candidate in self.corpus.schemas.values():
            if candidate.name == fragment.name:
                continue
            mapping = self.matcher.match(fragment, candidate, one_to_one=True)
            fit = self._fit(fragment, candidate, mapping)
            preference = self._preference(fragment, candidate)
            score = self.alpha * fit + self.beta * preference
            proposals.append(SchemaProposal(candidate, score, fit, preference, mapping))
        proposals.sort(key=lambda p: (-p.score, p.schema.name))
        return proposals[:limit]

    # -- auto-complete ------------------------------------------------------------
    def autocomplete(
        self, fragment: CorpusSchema, relation: str, limit: int = 5
    ) -> list[tuple[str, float]]:
        """Suggest attributes commonly co-occurring with the present ones.

        Scores are conditional association: for each candidate term, the
        mean of its PMI with the attributes already in the relation.
        """
        normalize = self.options.normalize
        present = {normalize(a) for a in fragment.relations.get(relation, [])}
        if not present:
            return []
        scores: dict[str, float] = {}
        for attribute in present:
            for other, pmi in self.stats.co_occurring(attribute, limit=30):
                if other in present:
                    continue
                scores[other] = scores.get(other, 0.0) + pmi / len(present)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    # -- layout advice (the TA anecdote) ----------------------------------------------
    def advise_layout(self, fragment: CorpusSchema, min_group: int = 2) -> list[LayoutAdvice]:
        """Detect attribute groups the corpus usually puts in a separate
        relation.

        For each relation R of the fragment and each frequent structure F
        strictly inside attrs(R): look at the corpus relations containing
        F.  If those relations usually do *not* also carry the rest of
        R's attributes (F lives apart in the corpus), and their usual
        name differs from R's, advise splitting F out under that name.
        """
        normalize = self.options.normalize
        advice: list[LayoutAdvice] = []
        signatures = self.stats.relation_signatures()
        for relation, attributes in fragment.relations.items():
            relation_term = normalize(relation)
            present = {normalize(a) for a in attributes}
            seen_groups: set[frozenset] = set()
            for structure in self.composite.frequent_structures(min_size=min_group):
                group = structure.attributes
                if not group < present or group in seen_groups:
                    continue  # must be a strict subset: something must remain
                remainder = present - group
                separate = 0
                together = 0
                for _name, signature in signatures:
                    if not group <= signature:
                        continue
                    if signature & remainder:
                        together += 1
                    else:
                        separate += 1
                if separate <= together:
                    continue
                names = self.stats.relation_name_for(group)
                suggested = next(
                    (name for name, _votes in names if name != relation_term), None
                )
                if suggested is None:
                    continue
                seen_groups.add(group)
                advice.append(LayoutAdvice(relation, group, suggested, separate))
        advice.sort(key=lambda a: (-a.support, -len(a.attributes), a.suggested_relation_name))
        return advice
