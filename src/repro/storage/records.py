"""Log-record codecs: rows, Updategrams, Deltas and snapshots as JSON.

The durability layer stores *logical change records* — the same
:class:`~repro.piazza.updates.Updategram` and
:class:`~repro.rdf.triples.Delta` objects that PRs 4–5 made first-class
mutation currency double as the WAL records here (``encode → append``
on the write path, ``decode → replay`` on recovery).  Everything is
JSON with one twist: row values keep their Python shape through the
round trip.  Scalars (``None``/bool/int/float/str) pass through
untouched; tuples and lists are tagged (``{"t": [...]}`` /
``{"l": [...]}``) so a tuple-valued column comes back a tuple, not a
list.  ``encode_x``/``decode_x`` are exact inverses — pinned by the
hypothesis round-trip suite in ``tests/test_storage.py``, including
empty grams/deltas and unicode values.

Decoders import their target classes lazily so this module stays
import-light: ``relational`` can depend on the storage engines without
dragging in the piazza or rdf packages.
"""

from __future__ import annotations

import json

from repro.storage.wal import StorageError

_SCALARS = (bool, int, float, str)


def encode_value(value: object) -> object:
    """JSON-shape a row value (scalars pass through, sequences tagged)."""
    if value is None or isinstance(value, _SCALARS):
        return value
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"l": [encode_value(item) for item in value]}
    raise StorageError(f"cannot encode value of type {type(value).__name__}: {value!r}")


def decode_value(encoded: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        if "t" in encoded:
            return tuple(decode_value(item) for item in encoded["t"])
        if "l" in encoded:
            return [decode_value(item) for item in encoded["l"]]
        raise StorageError(f"unknown value tag in {sorted(encoded)}")
    return encoded


def encode_row(row: tuple) -> list:
    """Encode one row tuple as a JSON list."""
    return [encode_value(value) for value in row]


def decode_row(encoded: list) -> tuple:
    """Inverse of :func:`encode_row`."""
    return tuple(decode_value(value) for value in encoded)


def sorted_rows(rows) -> list:
    """Deterministic encoding order for a set of rows (sets are unordered)."""
    return sorted(
        (encode_row(row) for row in rows),
        key=lambda encoded: json.dumps(encoded, ensure_ascii=False),
    )


# -- updategrams (the relational/peer log record) --------------------------
def encode_updategram(gram) -> dict:
    """Encode an :class:`~repro.piazza.updates.Updategram` payload."""
    return {
        "inserts": {rel: sorted_rows(rows) for rel, rows in gram.inserts.items()},
        "deletes": {rel: sorted_rows(rows) for rel, rows in gram.deletes.items()},
    }


def decode_updategram(payload: dict):
    """Inverse of :func:`encode_updategram`."""
    from repro.piazza.updates import Updategram

    gram = Updategram()
    for relation, rows in payload.get("inserts", {}).items():
        gram.insert(relation, (decode_row(row) for row in rows))
    for relation, rows in payload.get("deletes", {}).items():
        gram.delete(relation, (decode_row(row) for row in rows))
    return gram


# -- deltas (the triple-store log record) ----------------------------------
def _encode_triple(triple) -> list:
    return [
        triple.subject,
        triple.predicate,
        encode_value(triple.object),
        triple.source,
        triple.timestamp,
    ]


def encode_delta(delta) -> dict:
    """Encode a :class:`~repro.rdf.triples.Delta` payload."""
    return {
        "added": [_encode_triple(t) for t in delta.added],
        "removed": [_encode_triple(t) for t in delta.removed],
    }


def decode_delta(payload: dict):
    """Inverse of :func:`encode_delta`."""
    from repro.rdf.triples import Delta, Triple

    def triples(items):
        return tuple(
            Triple(s, p, decode_value(o), source, ts) for s, p, o, source, ts in items
        )

    return Delta(
        added=triples(payload.get("added", ())),
        removed=triples(payload.get("removed", ())),
    )


# -- snapshots ---------------------------------------------------------------
def encode_engine_snapshot(rows: dict[int, tuple], next_id: int) -> dict:
    """Encode a row-engine's full live state (row-id order)."""
    return {
        "kind": "engine-snapshot",
        "next_id": next_id,
        "rows": [[row_id, encode_row(row)] for row_id, row in sorted(rows.items())],
    }


def decode_engine_snapshot(payload: dict) -> tuple[dict[int, tuple], int]:
    """Inverse of :func:`encode_engine_snapshot`."""
    rows = {int(row_id): decode_row(row) for row_id, row in payload.get("rows", ())}
    return rows, int(payload.get("next_id", 0))


def encode_peer_snapshot(
    stored: dict[str, list[str]], data: dict[str, set], epoch: int
) -> dict:
    """Encode a peer's durable state: stored schema, data sets, epoch."""
    return {
        "kind": "peer-snapshot",
        "stored": {rel: list(attrs) for rel, attrs in stored.items()},
        "data": {rel: sorted_rows(rows) for rel, rows in data.items()},
        "epoch": epoch,
    }


def decode_peer_snapshot(payload: dict) -> tuple[dict, dict, int]:
    """Inverse of :func:`encode_peer_snapshot`."""
    stored = {rel: list(attrs) for rel, attrs in payload.get("stored", {}).items()}
    data = {
        rel: {decode_row(row) for row in rows}
        for rel, rows in payload.get("data", {}).items()
    }
    return stored, data, int(payload.get("epoch", 0))
