"""Inverted index: normalized terms -> posting lists.

The paper's premise is a *large* corpus of structures; every corpus
statistic that answers "which documents mention this term?" by scanning
the whole collection stops working past toy scale.  The
:class:`InvertedIndex` is the classic IR answer adapted to the S-WORLD:
posting lists keyed by normalized term, where a "document" may be a
schema, a relation signature, or another term's co-occurrence profile.

The index is maintained **incrementally**: adding (or replacing) a
document touches only that document's own postings, never the rest of
the index, so corpus growth is O(document size) instead of a rebuild.
``epoch`` increments on every mutation and is the invalidation token
for query caches layered above (:mod:`repro.search.cache`).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

DocId = Hashable


class InvertedIndex:
    """Term -> {document: weight} postings with incremental maintenance."""

    def __init__(self) -> None:  # noqa: D107
        self._postings: dict[Hashable, dict[DocId, float]] = {}
        self._documents: dict[DocId, tuple[Hashable, ...]] = {}
        self.epoch = 0

    # -- maintenance ----------------------------------------------------------
    def add(self, doc_id: DocId, terms: Iterable[Hashable] | Mapping[Hashable, float]) -> None:
        """Add or replace one document's postings.

        ``terms`` is either a bag of terms (weight 1.0 each) or a
        term -> weight mapping.  Replacement removes postings for terms
        the new version no longer contains; nothing else is touched.
        """
        if isinstance(terms, Mapping):
            weighted = dict(terms)
        else:
            weighted = {term: 1.0 for term in terms}
        stale = self._documents.get(doc_id)
        if stale is not None:
            for term in stale:
                if term not in weighted:
                    row = self._postings.get(term)
                    if row is not None:
                        row.pop(doc_id, None)
                        if not row:
                            del self._postings[term]
        for term, weight in weighted.items():
            self._postings.setdefault(term, {})[doc_id] = weight
        self._documents[doc_id] = tuple(weighted)
        self.epoch += 1

    def remove(self, doc_id: DocId) -> None:
        """Drop one document from every posting list it appears in."""
        terms = self._documents.pop(doc_id, None)
        if terms is None:
            return
        for term in terms:
            row = self._postings.get(term)
            if row is not None:
                row.pop(doc_id, None)
                if not row:
                    del self._postings[term]
        self.epoch += 1

    # -- queries --------------------------------------------------------------
    def postings(self, term: Hashable) -> Mapping[DocId, float]:
        """The posting list of ``term`` (empty mapping if unseen)."""
        return self._postings.get(term, {})

    def candidates(self, terms: Iterable[Hashable]) -> set:
        """Documents sharing at least one posting with ``terms``.

        This is the candidate-pruning primitive: for non-negative
        weights, any document with a nonzero dot product against a
        query over ``terms`` is in this set, so restricting scoring to
        it is exact.
        """
        found: set = set()
        for term in terms:
            row = self._postings.get(term)
            if row:
                found.update(row)
        return found

    def document_terms(self, doc_id: DocId) -> tuple:
        """The terms a document was indexed under (empty if unknown)."""
        return self._documents.get(doc_id, ())

    def terms(self) -> set:
        """Every term with a non-empty posting list."""
        return set(self._postings)

    def __contains__(self, doc_id: DocId) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        """Number of indexed documents."""
        return len(self._documents)

    def term_count(self) -> int:
        """Number of distinct terms with postings."""
        return len(self._postings)
