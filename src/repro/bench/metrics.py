"""Shared experiment metrics."""

from __future__ import annotations


def completeness(answers: set, certain: set) -> float:
    """Fraction of the certain answers a method returned (recall)."""
    if not certain:
        return 1.0
    return len(answers & certain) / len(certain)


def mean(values) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def matching_prf(predicted: set, gold: set) -> dict[str, float]:
    """Micro precision/recall/F1 of predicted pairs against gold pairs.

    Pairs may be any hashable tuples — (source, target) for one schema,
    (schema, source, target) for a whole corpus run.
    """
    true_positives = len(predicted & gold)
    precision = true_positives / len(predicted) if predicted else 0.0
    recall = true_positives / len(gold) if gold else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def corpus_match_prf(results: dict, gold: dict) -> dict[str, float]:
    """Micro P/R/F1 of per-schema match results against per-schema gold.

    ``results`` maps schema name -> ``MatchResult`` (anything iterable
    over correspondences with ``source``/``target``); ``gold`` maps
    schema name -> {source path: mediated path}.  Used by benchmark C12
    to assert that blocking preserves the brute-force quality exactly.
    """
    predicted_pairs = {
        (name, c.source, c.target)
        for name, result in results.items()
        for c in result
    }
    gold_pairs = {
        (name, source, target)
        for name, mapping in gold.items()
        for source, target in mapping.items()
    }
    return matching_prf(predicted_pairs, gold_pairs)
