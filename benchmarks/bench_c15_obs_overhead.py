"""Experiment C15 — the observability layer's overhead gate.

ISSUE 6 adds unified tracing + metrics across the PDMS stack
(:mod:`repro.obs`) under a hard cost discipline: metrics are always on
(instruments cache direct metric references, so recording is an
attribute add) and tracing is opt-in with a shared no-op span when off.
The discipline is only credible if it is *gated*, so this experiment
measures the same workloads the scale benchmarks use:

* **C11-style**: repeated single-relation reformulate+execute against a
  50-peer generated network (the query hot path);
* **C14-style**: registered continuous queries served from
  updategram-maintained views while a mutation stream trickles in (the
  serving hot path — the worst case for tracing, since a view-served
  read is microseconds of real work).

Measurement protocol: each workload builds **one** stack with a live
tracer and toggles ``tracer.enabled`` between paired passes, taking
the best of each arm.  Two separately built stacks differ by up to
~10% on identical code (dict/memory layout of the generated network),
which would swamp a 5% bar; toggling the flag on the *same* objects is
a perfectly paired comparison — same data, same caches, adjacent in
time — and is exactly the switch real deployments flip.  Asserted:

* **overhead** — full tracing costs <= 5% wall clock on both workloads
  (CI runs this as the blocking ``obs-overhead-gate`` job with
  ``BENCH_C15_QUICK=1``);
* **the trace is real** — the traced C14 arm produced span trees, and a
  single served cycle yields *one* tree covering registration-time
  reformulation, per-peer fetch round trips, and per-view maintenance
  decisions (the end-to-end visibility the layer exists for).
"""

import os
import time

from repro.bench import ResultTable
from repro.datasets.pdms_gen import random_tree_pdms, update_stream
from repro.obs import Observability
from repro.piazza import DistributedExecutor, ViewServer

QUICK = os.environ.get("BENCH_C15_QUICK", "") not in ("", "0")
PEERS = 50
ROUNDS = 40 if QUICK else 50  # paired passes per arm (plus warmup)
EXEC_REPEATS = 2 if QUICK else 3  # C11-style executes per timed pass
SERVE_REPEATS = 15 if QUICK else 20  # serves per query per updategram
QUERY_COUNT = 2
UPDATES = 4 if QUICK else 5
OVERHEAD_BAR = 1.05
ATTEMPTS = 3  # re-measure a workload whose first attempt exceeds the bar
DATALESS_SHARE = 5
OPTIONS = {"max_depth": 40}
SEED = 15


def _pdms(obs):
    """A fresh generated network wired to ``obs`` (index prebuilt)."""
    pdms = random_tree_pdms(
        PEERS, seed=SEED, courses=4, dataless_peers=PEERS // DATALESS_SHARE
    )
    pdms.obs = obs
    pdms.mapping_index()
    return pdms


def _queries(pdms, count: int) -> list[tuple[str, str]]:
    """``count`` single-relation course queries, spread across peers."""
    golds = pdms.generator_info["golds"]
    data_peers = sorted(
        (name for name, peer in pdms.peers.items() if peer.data),
        key=lambda name: int(name[1:]),
    )
    chosen = [data_peers[(i * len(data_peers)) // count] for i in range(count)]
    return [
        (name, f"q(?t) :- {name}.{golds[name]['course']}(?c, ?t, ?n, ?w, ?l, ?en, ?d)")
        for name in chosen
    ]


class _C11Workload:
    """Repeated reformulate+execute on one prebuilt stack."""

    def __init__(self, obs):  # noqa: D107
        self.obs = obs
        self.pdms = _pdms(obs)
        self.executor = DistributedExecutor(self.pdms)
        self.at_peer, self.query = _queries(self.pdms, 1)[0]

    def run(self, round_index: int) -> float:
        """Timed seconds for EXEC_REPEATS reformulate+execute calls."""
        started = time.perf_counter()
        for _ in range(EXEC_REPEATS):
            self.executor.execute(
                self.query, self.at_peer, reformulation_options=dict(OPTIONS)
            )
        return time.perf_counter() - started


class _C14Workload:
    """Interleaved update/serve stream on one prebuilt server.

    Registration happens at construction (paid once per continuous
    query in real use); each timed pass is the steady state — apply an
    updategram (subscription-routed maintenance + batched propagation),
    then serve every registered query repeatedly.  Per-pass streams are
    seeded by round index (generated outside the timed region), so
    successive passes are statistically identical workloads.
    """

    def __init__(self, obs):  # noqa: D107
        self.obs = obs
        self.pdms = _pdms(obs)
        self.executor = DistributedExecutor(self.pdms)
        self.queries = _queries(self.pdms, QUERY_COUNT)
        self.server = ViewServer(self.executor, reformulation_options=dict(OPTIONS))
        for name, query in self.queries:
            self.server.register(name, query)

    def run(self, round_index: int) -> float:
        """Timed seconds for one update/serve round."""
        stream = update_stream(
            self.pdms, UPDATES, seed=SEED + 1 + round_index,
            inserts_per_relation=2, deletes_per_relation=1,
            relations_per_step=2,
        )
        started = time.perf_counter()
        for owner, gram in stream:
            self.pdms.apply_updategram(owner, gram)
            for name, query in self.queries:
                for _ in range(SERVE_REPEATS):
                    stats = self.executor.execute(query, name, views=self.server)
                    assert stats.view_hits == 1
        return time.perf_counter() - started


def _best_of_toggled(workload_cls):
    """(baseline s, traced s): best of ROUNDS paired passes each.

    One stack, one live tracer; each round times a pass with
    ``tracer.enabled = False`` then one with ``True``, back to back.
    Taking the best of each arm over many short rounds filters
    scheduler/GC spikes; pairing on the same objects removes the
    stack-to-stack layout variance that separate builds suffer.
    Round 0 of each arm is an untimed warmup.
    """
    workload = workload_cls(Observability(tracing=True))
    tracer = workload.obs.tracer
    tracer.enabled = False
    workload.run(0)
    tracer.enabled = True
    workload.run(0)
    best_baseline = best_traced = float("inf")
    for round_index in range(1, ROUNDS + 1):
        tracer.enabled = False
        best_baseline = min(best_baseline, workload.run(2 * round_index))
        tracer.enabled = True
        best_traced = min(best_traced, workload.run(2 * round_index + 1))
    return best_baseline, best_traced


class TestC15ObsOverhead:
    def test_tracing_overhead_within_bar(self):
        table = ResultTable(
            "C15: full-tracing overhead vs the default no-op tracer",
            ["workload", "baseline (s)", "traced (s)", "overhead", "bar"],
        )
        ratios = {}
        for label, workload in (
            ("C11 execute", _C11Workload), ("C14 serve", _C14Workload)
        ):
            # A measurement that lands entirely inside a machine-noise
            # window (shared-runner neighbour, thermal throttle) can
            # inflate one arm of every pair; a bounded re-measure keeps
            # the gate honest about the overhead while not gating on
            # the runner's weather.
            for _ in range(ATTEMPTS):
                baseline, traced = _best_of_toggled(workload)
                ratio = traced / baseline
                if ratio <= OVERHEAD_BAR:
                    break
            ratios[label] = ratio
            table.add_row(
                label, baseline, traced, f"{ratio:.3f}x",
                f"<= {OVERHEAD_BAR:.2f}x",
            )
        table.note(
            "best of N paired passes on one prebuilt stack, toggling "
            "tracer.enabled between arms; metrics are on in both arms "
            "(always-on by design) so the ratio isolates the span machinery"
            + (" (quick mode)" if QUICK else "")
        )
        table.show()
        for label, ratio in ratios.items():
            assert ratio <= OVERHEAD_BAR, (
                f"{label}: tracing overhead {ratio:.3f}x exceeds "
                f"{OVERHEAD_BAR:.2f}x"
            )

    def test_traced_serve_yields_one_covering_tree(self):
        """One served cycle = one span tree: reformulation, per-peer
        round trips, and view maintenance decisions, all under a single
        root (context propagation needs no plumbing)."""
        obs = Observability(tracing=True)
        pdms = _pdms(obs)
        executor = DistributedExecutor(pdms)
        server = ViewServer(executor, reformulation_options=dict(OPTIONS))
        name, query = _queries(pdms, 1)[0]
        stream = update_stream(
            pdms, 1, seed=SEED + 2, inserts_per_relation=2,
            deletes_per_relation=1, relations_per_step=2,
        )
        with obs.tracer.span("c14.cycle") as root:
            server.register(name, query)
            for owner, gram in stream:
                pdms.apply_updategram(owner, gram)
            stats = executor.execute(query, name, views=server)
        assert stats.view_hits == 1
        names = root.names()
        # Registration-time reformulation + per-peer materialization
        # fetches, updategram maintenance, and the served read — one tree.
        assert "pdms.reformulate" in names
        assert "execute.fetch" in names
        assert "serving.updategram" in names
        assert "serving.maintain" in names
        assert "pdms.execute" in names
        # The registry carries latency distributions for the same run.
        metrics = obs.metrics
        assert metrics.histogram("reformulate.ms").count >= 1
        assert metrics.histogram("serving.updategram_ms").count >= 1
        for quantile in ("p50", "p95", "p99"):
            assert getattr(metrics.histogram("reformulate.ms"), quantile) >= 0.0
