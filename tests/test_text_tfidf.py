"""Tests for TF/IDF vectorization and the cosine keyword index."""

import pytest

from repro.text import CosineIndex, TfIdfVectorizer, cosine_similarity
from repro.text.synonyms import SynonymTable, default_synonyms, TranslationTable
from repro.text.synonyms import italian_english_dictionary


class TestCosine:
    def test_parallel_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"a": 3.0}) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0


class TestTfIdf:
    def test_rare_terms_weigh_more(self):
        vectorizer = TfIdfVectorizer(stem=False)
        vectorizer.fit(["course course title", "course name", "course room"])
        assert vectorizer.idf("title") > vectorizer.idf("course")

    def test_similarity_prefers_overlap(self):
        vectorizer = TfIdfVectorizer()
        vectorizer.fit(["ancient history course", "database systems course"])
        sim_history = vectorizer.similarity(
            "history of ancient rome", "ancient history course"
        )
        sim_db = vectorizer.similarity(
            "history of ancient rome", "database systems course"
        )
        assert sim_history > sim_db

    def test_stemming_conflates(self):
        vectorizer = TfIdfVectorizer(stem=True)
        vectorizer.fit(["courses"])
        assert vectorizer.similarity("course", "courses") == pytest.approx(1.0)

    def test_token_sequence_input(self):
        vectorizer = TfIdfVectorizer(stem=False)
        vectorizer.fit([["alpha", "beta"], ["alpha"]])
        assert "beta" in vectorizer.vocabulary


class TestCosineIndex:
    def test_search_ranks_relevant_first(self):
        index = CosineIndex()
        index.add("hist", "introductory ancient history course at berkeley")
        index.add("db", "graduate database systems seminar")
        index.add("ml", "machine learning for text corpora")
        results = index.search("ancient history")
        assert results[0][0] == "hist"

    def test_remove(self):
        index = CosineIndex()
        index.add("a", "alpha beta")
        index.remove("a")
        assert index.search("alpha") == []

    def test_limit(self):
        index = CosineIndex()
        for i in range(10):
            index.add(f"d{i}", "common words everywhere")
        assert len(index.search("common", limit=3)) == 3


class TestSynonyms:
    def test_classes_merge(self):
        table = SynonymTable([["a", "b"], ["b", "c"]])
        assert table.are_synonyms("a", "c")

    def test_unknown_terms(self):
        table = SynonymTable()
        assert not table.are_synonyms("x", "y")
        assert table.are_synonyms("x", "X")

    def test_default_domain(self):
        table = default_synonyms()
        assert table.are_synonyms("course", "class")
        assert table.are_synonyms("instructor", "professor")
        assert not table.are_synonyms("course", "instructor")

    def test_classes_listing(self):
        table = SynonymTable([["q", "r"]])
        assert {"q", "r"} in table.classes()


class TestTranslation:
    def test_roundtrip(self):
        table = TranslationTable([("corso", "course")])
        assert table.translate("corso") == "course"
        assert table.translate_back("course") == "corso"

    def test_unknown_passthrough(self):
        table = TranslationTable()
        assert table.translate("anything") == "anything"

    def test_italian_dictionary(self):
        dictionary = italian_english_dictionary()
        assert dictionary.translate("docente") == "instructor"
        synonyms = dictionary.as_synonyms()
        assert synonyms.are_synonyms("corso", "course")
