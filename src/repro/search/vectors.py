"""Sparse-vector store with precomputed norms and heap top-k retrieval.

Replaces the brute-force O(vocabulary) cosine scans of the corpus
statistics: vectors are registered once (norms precomputed, dimensions
fed to an :class:`~repro.search.postings.InvertedIndex`), and a top-k
query only scores documents sharing at least one dimension with the
query vector.

**Exact parity contract.**  ``top_k`` reproduces, bit for bit, what

    sorted(((doc, cosine_similarity(query, store[doc])) ...),
           key=lambda item: (-item[1], item[0]))[:k]

over *all* documents would return.  That requires replicating the
floating-point evaluation order of
:func:`repro.text.tfidf.cosine_similarity` exactly: the dot product
iterates the shorter vector (the same argument swap), stored vectors
keep their original insertion order (norms are summed in that order),
and the norm product multiplies in either order (IEEE multiplication is
commutative).  Candidate pruning is exact for non-negative weights:
a document sharing no dimension has dot 0 and is filtered by the
``score > 0`` rule brute force applies anyway.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Mapping

from repro.search.postings import DocId, InvertedIndex


def _norm(vector: Mapping) -> float:
    # Sum in the vector's iteration order: identical to what
    # cosine_similarity computes per call on the same dict.
    return math.sqrt(sum(weight * weight for weight in vector.values()))


def _dot(vec_a: Mapping, vec_b: Mapping) -> float:
    # cosine_similarity iterates the shorter vector; replicate the swap.
    if len(vec_b) < len(vec_a):
        vec_a, vec_b = vec_b, vec_a
    return sum(weight * vec_b.get(term, 0.0) for term, weight in vec_a.items())


class SparseVectorStore:
    """Documents as sparse vectors; incremental adds; indexed top-k."""

    def __init__(self) -> None:  # noqa: D107
        self._index = InvertedIndex()
        self._vectors: dict[DocId, dict] = {}
        self._norms: dict[DocId, float] = {}

    # -- maintenance ----------------------------------------------------------
    def put(self, doc_id: DocId, vector: Mapping) -> None:
        """Add or replace one document's vector (norm + postings update).

        The vector is copied preserving iteration order — the order the
        brute-force cosine would see — so norms and dot products stay
        bitwise identical to an unindexed scan.
        """
        vector = dict(vector)
        self._vectors[doc_id] = vector
        self._norms[doc_id] = _norm(vector)
        self._index.add(doc_id, vector)

    def remove(self, doc_id: DocId) -> None:
        """Drop a document from the store and the dimension index."""
        if self._vectors.pop(doc_id, None) is not None:
            self._norms.pop(doc_id, None)
            self._index.remove(doc_id)

    # -- access ---------------------------------------------------------------
    def vector(self, doc_id: DocId) -> dict | None:
        """The stored vector (None if absent).  Treat as read-only."""
        return self._vectors.get(doc_id)

    def norm(self, doc_id: DocId) -> float:
        """Precomputed Euclidean norm (0.0 if absent)."""
        return self._norms.get(doc_id, 0.0)

    @property
    def epoch(self) -> int:
        """Mutation counter (cache invalidation token)."""
        return self._index.epoch

    def __len__(self) -> int:
        return len(self._vectors)

    def __contains__(self, doc_id: DocId) -> bool:
        return doc_id in self._vectors

    # -- retrieval ------------------------------------------------------------
    def similarity(self, query: Mapping, doc_id: DocId, query_norm: float | None = None) -> float:
        """Cosine between ``query`` and one stored document."""
        vector = self._vectors.get(doc_id)
        if not vector or not query:
            return 0.0
        norm = self._norms[doc_id]
        if query_norm is None:
            query_norm = _norm(query)
        if norm == 0.0 or query_norm == 0.0:
            return 0.0
        return _dot(query, vector) / (query_norm * norm)

    def top_k(self, query: Mapping, k: int, exclude: Iterable[DocId] = ()) -> list[tuple[DocId, float]]:
        """Top ``k`` documents by cosine, ties broken by ascending doc id.

        Only documents sharing at least one dimension with ``query``
        are scored (posting-list candidates); the heap keeps selection
        at O(n log k).  Documents in ``exclude`` and zero-similarity
        documents are omitted, matching the brute-force filter.
        """
        if not query or k <= 0:
            return []
        query_norm = _norm(query)
        if query_norm == 0.0:
            return []
        excluded = set(exclude)
        scored: list[tuple[DocId, float]] = []
        for doc_id in self._index.candidates(query):
            if doc_id in excluded:
                continue
            score = self.similarity(query, doc_id, query_norm)
            if score > 0.0:
                scored.append((doc_id, score))
        return heapq.nsmallest(k, scored, key=lambda item: (-item[1], item[0]))
