"""Composite statistics: frequent partial structures (Section 4.2.2).

"We will maintain only statistics on partial structures that appear
frequently ... and estimate the statistics for other partial
structures."  A *partial structure* here is a set of (normalized)
attribute terms that appear together in a relation; frequent ones are
mined with Apriori, and support for unseen sets is estimated from
pairwise statistics (independence-style approximation).
"""

from __future__ import annotations

import itertools
import math
from collections import Counter
from dataclasses import dataclass

from repro.corpus.model import Corpus
from repro.corpus.stats import StatisticsOptions


@dataclass(frozen=True)
class FrequentStructure:
    """A frequently co-occurring attribute set, with its usual name."""

    attributes: frozenset
    support: int
    typical_relation_names: tuple

    def __contains__(self, term: str) -> bool:
        return term in self.attributes


class CompositeStatistics:
    """Mined frequent attribute sets plus support estimation."""

    def __init__(
        self,
        corpus: Corpus,
        options: StatisticsOptions | None = None,
        min_support: int = 2,
        max_size: int = 4,
    ):  # noqa: D107
        self.corpus = corpus
        self.options = options or StatisticsOptions()
        self.min_support = min_support
        self.max_size = max_size
        self._transactions: list[tuple[str, frozenset]] = []
        self._support: dict[frozenset, int] = {}
        self._mine()

    # -- mining -----------------------------------------------------------------
    def _mine(self) -> None:
        normalize = self.options.normalize
        for schema in self.corpus.schemas.values():
            for relation, attributes in schema.relations.items():
                signature = frozenset(normalize(a) for a in attributes)
                if signature:
                    self._transactions.append((normalize(relation), signature))
        # Apriori over the attribute-set transactions.
        singles: Counter = Counter()
        for _name, signature in self._transactions:
            for term in signature:
                singles[frozenset([term])] += 1
        level = {
            itemset: count
            for itemset, count in singles.items()
            if count >= self.min_support
        }
        self._support.update(level)
        size = 1
        while level and size < self.max_size:
            size += 1
            candidates: set[frozenset] = set()
            frequent_items = sorted({item for itemset in level for item in itemset})
            for itemset in level:
                for item in frequent_items:
                    if item not in itemset:
                        candidate = itemset | {item}
                        if len(candidate) == size:
                            candidates.add(candidate)
            next_level: dict[frozenset, int] = {}
            for candidate in candidates:
                count = sum(
                    1 for _name, signature in self._transactions if candidate <= signature
                )
                if count >= self.min_support:
                    next_level[candidate] = count
            self._support.update(next_level)
            level = next_level

    # -- access -------------------------------------------------------------------
    def frequent_structures(self, min_size: int = 2) -> list[FrequentStructure]:
        """All mined structures of at least ``min_size`` attributes."""
        structures: list[FrequentStructure] = []
        for itemset, support in self._support.items():
            if len(itemset) < min_size:
                continue
            names: Counter = Counter()
            for name, signature in self._transactions:
                if itemset <= signature:
                    names[name] += 1
            structures.append(
                FrequentStructure(itemset, support, tuple(n for n, _c in names.most_common(3)))
            )
        structures.sort(key=lambda s: (-s.support, -len(s.attributes), sorted(s.attributes)))
        return structures

    def support(self, attributes: frozenset | set) -> int:
        """Exact support if mined; 0 otherwise (see :meth:`estimate_support`)."""
        return self._support.get(frozenset(attributes), 0)

    def estimate_support(self, attributes: frozenset | set) -> float:
        """Estimated support for arbitrary (possibly unmined) sets.

        Exact when mined; otherwise the geometric-mean chain estimate
        from pairwise supports — the "estimate the statistics for other
        partial structures" requirement.
        """
        attributes = frozenset(self.options.normalize(a) for a in attributes)
        exact = self._support.get(attributes)
        if exact is not None:
            return float(exact)
        if not attributes:
            return 0.0
        if len(attributes) == 1:
            return 0.0  # below min_support, genuinely rare
        total = max(len(self._transactions), 1)
        pair_probabilities: list[float] = []
        for pair in itertools.combinations(sorted(attributes), 2):
            pair_support = self._support.get(frozenset(pair), 0)
            pair_probabilities.append(pair_support / total)
        if not pair_probabilities or all(p == 0.0 for p in pair_probabilities):
            return 0.0
        # Geometric mean of pairwise probabilities, scaled back to counts.
        positive = [p for p in pair_probabilities if p > 0.0]
        if len(positive) < len(pair_probabilities):
            return 0.0  # some pair never co-occurs: the set cannot either
        log_mean = sum(math.log(p) for p in positive) / len(positive)
        return math.exp(log_mean) * total

    def transaction_count(self) -> int:
        """Number of relations mined over."""
        return len(self._transactions)
