"""Trace context propagation across threads, processes and the wire.

A :class:`TraceContext` is the portable identity of one open span:
``(trace_id, span_id)`` plus — within the originating process — a
reference to the live :class:`~repro.obs.trace.Span` object itself.
The runtime pools (:mod:`repro.runtime.pools`) capture the caller's
context before submitting a batch and *activate* it on every worker,
so a span opened by a pool worker attaches to the caller's live span
and one distributed execution stays one tree (fixing the ISSUE 9 wart
where worker spans became orphan roots).

Two degrees of fidelity, chosen automatically:

* **Live attach** (same process) — the context carries the parent
  :class:`Span`; a worker's root-level span appends itself directly to
  the parent's children.  ``list.append`` is atomic under the GIL, so
  concurrent workers attach race-free (the tracer materializes the
  parent's child list once, at capture time).
* **Wire form** (crossed a process/network boundary) — only the ids
  survive.  A span opened under a wire context becomes a *fragment
  root* carrying the originating ``trace_id``/``parent_id``; the
  export layer (:mod:`repro.obs.export`) stitches fragments back into
  one trace by id.  Pickling a context degrades it to wire form
  automatically (``__reduce__`` drops the unpicklable live span), so
  :class:`~repro.runtime.pools.ProcessPoolRuntime` ships contexts with
  no special casing.

Activation is scoped and thread-local:  ``with tracer.activate(ctx):``
installs ``ctx`` as the thread's ambient parent for root-level spans
and restores the previous ambient context on exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceContext:
    """The propagatable identity of one open span (see module docstring)."""

    trace_id: str
    span_id: str
    #: The live parent span, present only inside the originating
    #: process; excluded from equality so a wire context round-tripped
    #: through pickle still compares equal to its live original.
    span: object | None = field(default=None, repr=False, compare=False)

    def __reduce__(self):
        # Crossing a process boundary drops the live span: workers in
        # another interpreter can only ever hold the wire form.
        return (TraceContext, (self.trace_id, self.span_id))

    def wire(self) -> "TraceContext":
        """This context without the live span reference (id-only form)."""
        if self.span is None:
            return self
        return TraceContext(self.trace_id, self.span_id)


class ContextActivation:
    """Scoped installation of a context as a thread's ambient parent.

    Returned by :meth:`~repro.obs.trace.Tracer.activate`; saves and
    restores whatever ambient context the thread had, so activations
    nest correctly (a worker running a nested fan-out inline keeps its
    own context).
    """

    __slots__ = ("_local", "_context", "_previous")

    def __init__(self, local, context: TraceContext | None):  # noqa: D107
        self._local = local
        self._context = context
        self._previous = None

    def __enter__(self) -> TraceContext | None:
        self._previous = getattr(self._local, "context", None)
        self._local.context = self._context
        return self._context

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._local.context = self._previous
        return False
