"""Hierarchical spans with context propagation (`repro.obs`).

A :class:`Tracer` produces a tree of :class:`Span`\\ s per top-level
operation: the instrumented hot paths open spans with ``with
tracer.span("pdms.reformulate", ...)`` and nesting follows the call
stack automatically (the tracer keeps the current-span stack, so a
per-peer fetch span opened inside an execute span becomes its child
without any plumbing).  One served continuous query therefore yields
one tree covering reformulation → per-peer execution round trips →
view maintenance decisions — the end-to-end visibility ISSUE 6 asks
for.

Cost discipline:

* **Disabled is the default and near-free.**  ``Tracer(enabled=False)``
  (what :func:`repro.obs.default` hands out) returns one shared
  :data:`NOOP_SPAN` from every ``span()`` call — no allocation, no
  clock read.  Benchmark C15 asserts the *enabled* tracer stays within
  5% on the C11/C14 workloads; disabled it is a single attribute test.
* **Spans always close.**  ``Span.__exit__`` stamps the duration and
  pops the stack even when the body raises; the span's ``error`` flag
  is set and ``error_type`` attribute recorded, then the exception
  propagates (``tests/test_obs.py`` pins this).
* **Bounded retention.**  Finished root spans are kept on
  ``Tracer.roots`` up to ``max_roots`` (oldest dropped) so a
  long-running traced process cannot leak its whole history.

Cross-thread and cross-process propagation (ISSUE 10): every span
carries ``trace_id`` / ``span_id`` / ``parent_id`` — assigned
*lazily*, on capture/stamp/export rather than on open, so the id
machinery costs the traced hot loops nothing (the C15 gate holds with
propagation on) — and
:meth:`Tracer.current_context` captures the innermost open span as a
:class:`~repro.obs.context.TraceContext` that
:meth:`Tracer.activate` installs as another thread's ambient parent —
the mechanism the runtime pools use to re-parent worker spans under
the caller's span.  :meth:`Tracer.current_ids` is the cheap id-only
hook the simulated network uses to stamp messages with the emitting
span.  Root retention is safe under concurrent filing: closing spans
file with a GIL-atomic ``deque.append`` and readers retry the copy,
so workers on many threads can file fragment roots while another
thread renders or exports.

Rendering: :meth:`Tracer.render` draws an indented ASCII tree with
per-span durations and attributes; :meth:`Tracer.to_json` exports the
same trees as plain dicts.  The flat-record JSONL exporter and the
path-folding profiler live in :mod:`repro.obs.export` and
:mod:`repro.obs.profile`.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from itertools import count
from time import perf_counter

from repro.obs.context import ContextActivation, TraceContext


class _NoopSpan:
    """The shared do-nothing span the disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False  # never swallow exceptions

    def annotate(self, **attrs) -> None:
        """Ignore attributes (no span is being recorded)."""


#: Singleton returned by ``Tracer.span`` when tracing is disabled.
NOOP_SPAN = _NoopSpan()


class _TracerLocal(threading.local):
    """Per-thread tracer state with a class-level ambient default.

    The class attribute makes ``local.context`` a plain (fast) read on
    threads that never activated a context — ``getattr`` with a default
    would pay the internal AttributeError on every new-trace root span,
    which the C15 overhead gate charges.
    """

    context = None


class Span:
    """One timed, attributed node in a trace tree.

    Use as a context manager (via :meth:`Tracer.span`); entering pushes
    it onto the tracer's current-span stack, exiting stamps the
    duration, records any exception on the ``error``/``error_type``
    fields, pops the stack, and files root spans on ``Tracer.roots``.
    """

    __slots__ = ("name", "attrs", "error", "trace_id", "span_id", "parent_id",
                 "_tracer", "_children", "_started", "_duration", "_is_root")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):  # noqa: D107
        self.name = name
        self.attrs = attrs
        self.error = False
        # Ids are lazy (the C15 gate rules the open/close path): roots
        # get trace_id on __enter__, span_id/trace_id for nested spans
        # are assigned only on capture, stamp or export; parent_id is
        # stored only where the tree walk cannot recover it (spans
        # parented across a thread/process hop).
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self._tracer = tracer
        # Lazily allocated on first child — most spans are leaves, and
        # the hot paths open thousands of them.
        self._children: list[Span] | None = None
        self._started = 0.0
        self._duration: float | None = None
        self._is_root = False

    @property
    def children(self) -> tuple:
        """Child spans in open order (empty for leaves)."""
        return tuple(self._children) if self._children else ()

    @property
    def duration_ms(self) -> float | None:
        """Wall-clock duration in ms; ``None`` while the span is open."""
        return self._duration

    @property
    def closed(self) -> bool:
        """Whether the span has finished (exited its ``with`` block)."""
        return self._duration is not None

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered mid-span (view hits, payloads)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = tracer._stack
        if stack:
            # Same-thread nesting: the classic call-stack parent.  Ids
            # stay unassigned — the C15 overhead gate rules this path,
            # and most spans are never captured, stamped or exported.
            # ``trace_id`` is recoverable from the stack root and the
            # parent link from the tree walk (see ``Tracer.current_ids``
            # and ``export.span_records``), so nothing is lost.
            parent = stack[-1]
            if parent._children is None:
                parent._children = [self]
            else:
                parent._children.append(self)
        else:
            context = tracer._local.context
            if context is None:
                # A brand-new trace on this thread; its trace_id is
                # assigned on first capture/stamp/export.
                self._is_root = True
            else:
                self.trace_id = context.trace_id
                self.parent_id = context.span_id
                self.span_id = tracer._next_span_id()
                live = context.span
                if live is not None:
                    # Live attach: the capture site materialized the
                    # parent's child list, and list.append is atomic
                    # under the GIL, so concurrent workers are safe.
                    live._children.append(self)
                else:
                    # Wire-only context (crossed a process boundary):
                    # file a fragment root; the exporter links by ids.
                    self._is_root = True
        stack.append(self)
        self._started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._duration = (perf_counter() - self._started) * 1000.0
        if exc_type is not None:
            self.error = True
            self.attrs["error_type"] = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        if not stack and self._is_root:
            # deque.append is atomic under the GIL (and maxlen evicts
            # atomically), so filing needs no lock even when many pool
            # workers file fragment roots at once; concurrent *readers*
            # retry instead (see Tracer.root_list).
            self._tracer.roots.append(self)
        return False  # propagate exceptions

    # -- export ------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form of this span's subtree."""
        node: dict = {"name": self.name, "duration_ms": self._duration}
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        if self.error:
            node["error"] = True
        if self._children:
            node["children"] = [child.to_dict() for child in self._children]
        return node

    def render(self, indent: int = 0) -> str:
        """Indented ASCII rendering of this span's subtree."""
        duration = (
            f"{self._duration:.3f} ms" if self._duration is not None else "open"
        )
        attrs = "".join(
            f" {key}={value}" for key, value in self.attrs.items()
        )
        flag = " !ERROR" if self.error else ""
        lines = [f"{'  ' * indent}- {self.name} [{duration}]{attrs}{flag}"]
        lines.extend(child.render(indent + 1) for child in self._children or ())
        return "\n".join(lines)

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self._children or ():
            found = child.find(name)
            if found is not None:
                return found
        return None

    def names(self) -> list[str]:
        """Every span name in this subtree, depth-first preorder."""
        collected = [self.name]
        for child in self._children or ():
            collected.extend(child.names())
        return collected


class Tracer:
    """Produces span trees; disabled (the default) it is a no-op.

    **One current-span stack per thread.**  Context propagation is call
    nesting, and with the parallel runtime (ISSUE 9) the call stacks
    are per-thread: a span opened inside a pool worker nests under
    whatever that *worker* has open, never under another thread's span,
    so concurrent fan-out cannot corrupt a tree.

    **Cross-thread parenting is explicit** (ISSUE 10): a thread with an
    *activated* :class:`~repro.obs.context.TraceContext` (see
    :meth:`activate`) parents its root-level spans under the captured
    span instead of opening a fresh trace — the runtime pools do this
    for every worker, so a parallel fan-out yields one tree.  Worker
    spans with neither an open span nor an activated context still
    become their own roots, which ``tests/test_runtime.py``
    stress-asserts.  Root filing stays a bare GIL-atomic deque append
    (the C15 bar charges every root for it); renderers and exporters
    read through retrying copies, so many threads may file fragment
    roots while another renders, exports or clears.
    """

    def __init__(self, enabled: bool = False, max_roots: int = 64):  # noqa: D107
        self.enabled = enabled
        self.max_roots = max_roots
        # deque(maxlen=...) makes root filing O(1) with automatic
        # oldest-first eviction — no per-span list shifting.
        self.roots: deque[Span] = deque(maxlen=max_roots)
        self._local = _TracerLocal()
        # itertools.count.__next__ is atomic under the GIL, so id
        # assignment needs no lock even across pool workers.
        self._span_ids = count(1)
        self._trace_ids = count(1)

    @property
    def _stack(self) -> list:
        """This thread's current-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_span_id(self) -> str:
        return f"s{next(self._span_ids)}"

    def _next_trace_id(self) -> str:
        return f"t{next(self._trace_ids)}"

    def span(self, name: str, **attrs):
        """Open a span (context manager); shared no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- context propagation -----------------------------------------------
    def current_context(self) -> TraceContext | None:
        """Capture the innermost open span as a propagatable context.

        ``None`` when tracing is disabled or nothing is open — callers
        (the runtime pools) skip activation entirely in that case.
        Falls through to the thread's own activated context, so a
        worker capturing mid-fan-out hands nested workers the same
        parent it was given.
        """
        if not self.enabled:
            return None
        stack = self._stack
        if stack:
            span = stack[-1]
            self._ensure_ids(span, stack)
            # Materialize the child list now, single-threaded, so the
            # workers' live attaches are bare list.appends.
            if span._children is None:
                span._children = []
            return TraceContext(span.trace_id, span.span_id, span)
        return self._local.context

    def _ensure_ids(self, span: Span, stack: list) -> None:
        """Assign ``span``'s lazy ids (spans skip them on open)."""
        if span.span_id is None:
            span.span_id = self._next_span_id()
        if span.trace_id is None:
            root = stack[0]
            if root.trace_id is None:
                root.trace_id = self._next_trace_id()
            span.trace_id = root.trace_id

    def current_ids(self) -> tuple[str, str] | None:
        """``(trace_id, span_id)`` of the ambient span, id-only.

        The cheap per-event hook (no object allocation beyond the
        tuple) the simulated network uses to stamp every message with
        the span that emitted it.
        """
        stack = self._stack
        if stack:
            span = stack[-1]
            if span.span_id is None or span.trace_id is None:
                self._ensure_ids(span, stack)
            return span.trace_id, span.span_id
        context = self._local.context
        if context is not None:
            return context.trace_id, context.span_id
        return None

    def activate(self, context: TraceContext | None) -> ContextActivation:
        """Scoped ambient parent for this thread's root-level spans.

        ``with tracer.activate(ctx): ...`` — spans opened with nothing
        on the thread's stack attach under ``ctx`` instead of starting
        a new trace.  Activating ``None`` is a no-op scope.
        """
        return ContextActivation(self._local, context)

    # -- root retention ------------------------------------------------------
    # Filing is a bare (GIL-atomic) deque.append on the hot close path;
    # readers absorb the concurrency instead.  Copying a deque while
    # another thread appends raises RuntimeError, so the readers retry —
    # the copy is at most ``max_roots`` elements, so a retry wins the
    # race after a step or two (tests/test_runtime.py hammers this).

    def last_root(self) -> Span | None:
        """The most recently finished top-level span."""
        try:
            return self.roots[-1]
        except IndexError:
            return None

    def root_list(self) -> list[Span]:
        """A consistent copy of the retained roots, oldest first."""
        while True:
            try:
                return list(self.roots)
            except RuntimeError:  # a root was filed mid-copy; retry
                continue

    def clear(self) -> None:
        """Drop retained root spans (open spans are unaffected)."""
        self.roots.clear()

    # -- export ------------------------------------------------------------
    def render(self, span: Span | None = None) -> str:
        """ASCII tree of ``span`` (default: the last finished root)."""
        span = span or self.last_root()
        if span is None:
            return "(no finished traces)"
        return span.render()

    def to_json(self, indent: int | None = None) -> str:
        """All retained root trees as JSON."""
        return json.dumps(
            [root.to_dict() for root in self.root_list()], indent=indent
        )
