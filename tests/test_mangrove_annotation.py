"""Tests for lightweight schemas and the in-place annotation language."""

import pytest

from repro.mangrove import AnnotatedDocument, AnnotationError, LightweightSchema
from repro.mangrove.schema import SchemaRegistry, tag, university_schema

COURSE_PAGE = """<html><body>
<h1>CSE 143: Intro Programming</h1>
<p>Taught by Pat Smith, MWF 10:30, in Gates 271.</p>
<p>Office hours: Tue 2-4.</p>
</body></html>"""


@pytest.fixture
def schema():
    return university_schema()


@pytest.fixture
def doc(schema):
    return AnnotatedDocument("http://uw.edu/cse143", COURSE_PAGE, schema)


class TestLightweightSchema:
    def test_paths(self, schema):
        paths = schema.paths()
        assert "course" in paths
        assert "course.title" in paths
        assert "course.ta.email" in paths

    def test_entity_vs_property(self, schema):
        assert schema.is_entity_path("course")
        assert schema.is_entity_path("course.ta")
        assert not schema.is_entity_path("course.title")

    def test_allowed_children(self, schema):
        assert "title" in schema.allowed_children("course")
        assert "course" in schema.allowed_children()

    def test_unknown_path(self, schema):
        assert not schema.is_valid_path("course.price")
        with pytest.raises(Exception):
            schema.allowed_children("nope.nope")

    def test_suggest(self, schema):
        suggestions = schema.suggest("instructor")
        assert "course.instructor" in suggestions

    def test_suggest_via_abbreviation(self, schema):
        suggestions = schema.suggest("ph")  # expands to phone
        assert "person.phone" in suggestions

    def test_registry(self, schema):
        registry = SchemaRegistry([schema])
        assert registry.get("university") is schema
        assert registry.names() == ["university"]
        with pytest.raises(Exception):
            registry.get("other")


class TestAnnotation:
    def test_annotate_and_extract(self, doc):
        doc.annotate_text("CSE 143: Intro Programming", "course")
        doc.annotate_text("Intro Programming", "course.title")
        annotations = doc.annotations()
        assert len(annotations) == 2
        inner = [a for a in annotations if a.tag_path == "course.title"][0]
        outer = [a for a in annotations if a.tag_path == "course"][0]
        assert inner.parent_id == outer.id
        assert inner.text == "Intro Programming"

    def test_markers_invisible_in_rendered_text(self, doc):
        before = doc.rendered_text()
        doc.annotate_text("Pat Smith", "course.instructor")
        assert doc.rendered_text() == before

    def test_unknown_tag_rejected(self, doc):
        with pytest.raises(AnnotationError):
            doc.annotate_text("Pat Smith", "course.salary")

    def test_missing_text_rejected(self, doc):
        with pytest.raises(AnnotationError):
            doc.annotate_text("No Such Text", "course.title")

    def test_occurrence_selection(self, schema):
        doc = AnnotatedDocument("u", "<p>A B A</p>", schema)
        doc.annotate_text("A", "person.name", occurrence=2)
        annotation = doc.annotations()[0]
        assert doc.html.index("<!--mg:begin") > doc.html.index("B")
        assert annotation.text == "A"

    def test_remove_annotation(self, doc):
        annotation_id = doc.annotate_text("Pat Smith", "course.instructor")
        assert doc.remove_annotation(annotation_id)
        assert doc.annotations() == []
        assert not doc.remove_annotation(annotation_id)

    def test_bad_span_rejected(self, doc):
        with pytest.raises(AnnotationError):
            doc.annotate_span(5, 5, "course.title")

    def test_span_cannot_split_tag(self, schema):
        doc = AnnotatedDocument("u", "<p>hello</p>", schema)
        start = doc.html.index("<p>") + 1
        with pytest.raises(AnnotationError):
            doc.annotate_span(start, start + 4, "person.name")


class TestTripleExtraction:
    def test_entity_and_properties(self, doc):
        doc.annotate_text("CSE 143: Intro Programming", "course")
        doc.annotate_text("Intro Programming", "course.title")
        doc.annotate_text("Pat Smith", "course.instructor")
        triples = doc.to_triples()
        subjects = {t.subject for t in triples}
        assert "http://uw.edu/cse143#course-1" in subjects
        spo = {(t.predicate, t.object) for t in triples}
        assert ("rdf:type", "course") in spo
        assert ("course.title", "Intro Programming") in spo
        assert ("course.instructor", "Pat Smith") in spo

    def test_property_outside_entity_attaches_to_page(self, doc):
        doc.annotate_text("Tue 2-4", "person.office")
        triples = doc.to_triples()
        assert triples[0].subject == "http://uw.edu/cse143"

    def test_provenance_is_page_url(self, doc):
        doc.annotate_text("Pat Smith", "course.instructor")
        assert all(t.source == doc.url for t in doc.to_triples())

    def test_two_entities_get_distinct_subjects(self, schema):
        html = "<p>X taught by A</p><p>Y taught by B</p>"
        doc = AnnotatedDocument("u", html, schema)
        doc.annotate_text("X taught by A", "course")
        doc.annotate_text("Y taught by B", "course")
        doc.annotate_text("X", "course.title")
        doc.annotate_text("Y", "course.title")
        triples = doc.to_triples()
        title_subjects = {t.subject for t in triples if t.predicate == "course.title"}
        assert title_subjects == {"u#course-1", "u#course-2"}

    def test_nested_entity_subjects(self, doc):
        doc.annotate_text("CSE 143: Intro Programming", "course")
        # The TA block nests inside the course.
        doc.annotate_text("Pat Smith", "course.ta")
        doc.annotate_text("Smith", "course.ta.name")
        triples = doc.to_triples()
        ta_name = [t for t in triples if t.predicate == "course.ta.name"][0]
        assert ta_name.subject.endswith("#course.ta-1")

    def test_annotation_text_strips_nested_markup(self, schema):
        doc = AnnotatedDocument("u", "<p><b>Ancient</b> History</p>", schema)
        doc.annotate_text("<b>Ancient</b> History", "course.title")
        assert doc.annotations()[0].text == "Ancient History"

    def test_extraction_idempotent(self, doc):
        doc.annotate_text("Pat Smith", "course.instructor")
        first = [(t.subject, t.predicate, t.object) for t in doc.to_triples()]
        second = [(t.subject, t.predicate, t.object) for t in doc.to_triples()]
        assert first == second
