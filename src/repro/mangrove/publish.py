"""Publishing annotations into the repository.

Two strategies, compared in benchmark C5:

* :class:`Publisher` — the MANGROVE way: "the database is typically
  updated the moment a user publishes new or revised content".
  Re-publishing a page atomically replaces everything previously
  extracted from that URL (the page is the single copy of the data)
  via :meth:`~repro.rdf.store.TripleStore.replace_source`: the fresh
  extraction is diffed against the stored triples, so an edited page
  touches only its changed triples and subscribed applications receive
  exactly **one** delta notification per publish.  (The seed modelled
  a re-publish as ``remove_source`` + ``add_all``, which notified
  twice and made every app refresh twice per publish.)
* :class:`PeriodicCrawler` — the baseline the paper rejects: changes
  take effect only when the next crawl visits the page, so applications
  serve stale data in between and every crawl re-reads every page.

On a durable store (a :class:`~repro.rdf.store.TripleStore` over a
:class:`~repro.storage.log.LogEngine`) a publish stays exactly this
atomic: the whole ``replace_source`` diff is **one** write-ahead-log
record (whose logical payload is the delta itself) committed before
the **one** delta notification fires — crash mid-publish and recovery
shows either the whole re-publish or none of it, never a half-replaced
page.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mangrove.annotation import AnnotatedDocument
from repro.rdf import TripleStore


@dataclass
class Publisher:
    """Immediate, per-page publish into a :class:`TripleStore`."""

    store: TripleStore
    published_pages: int = 0
    published_triples: int = 0

    def publish(self, document: AnnotatedDocument) -> int:
        """Replace the page's triples with a fresh extraction.

        One atomic ``replace_source``: at most one listener
        notification, carrying only the triples that actually changed.
        """
        triples = document.to_triples()
        self.store.replace_source(document.url, triples)
        self.published_pages += 1
        self.published_triples += len(triples)
        return len(triples)


@dataclass
class PeriodicCrawler:
    """Full-corpus recrawl on a period (the non-instant baseline).

    Time is logical: call :meth:`tick` once per simulated time unit.
    Pages edited between crawls accumulate staleness, measured as
    tick-units during which the repository disagrees with the page.
    """

    store: TripleStore
    period: int
    pages: dict[str, AnnotatedDocument] = field(default_factory=dict)
    clock: int = 0
    pages_crawled: int = 0
    staleness_ticks: int = 0
    _dirty: set[str] = field(default_factory=set)

    def register(self, document: AnnotatedDocument) -> None:
        """Track a page (it will be read on every crawl)."""
        self.pages[document.url] = document
        self._dirty.add(document.url)

    def edit(self, url: str) -> None:
        """Note that a page changed; the store is stale until next crawl."""
        if url not in self.pages:
            raise KeyError(f"unknown page {url!r}")
        self._dirty.add(url)

    def tick(self) -> bool:
        """Advance time one unit; crawl if the period elapsed.

        Returns True when a crawl happened.
        """
        self.clock += 1
        self.staleness_ticks += len(self._dirty)
        if self.clock % self.period != 0:
            return False
        for url, document in self.pages.items():
            # One atomic replace (= at most one notification) per page.
            self.store.replace_source(url, document.to_triples())
            self.pages_crawled += 1
        self._dirty.clear()
        return True
