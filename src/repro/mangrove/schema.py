"""Lightweight schemas: standardized tag names with allowed nesting.

Section 2.1: "users of MANGROVE are required to adhere to one of the
schemas provided by the MANGROVE administrator ... users are only
required to use a set of standardized tag names (and their allowed
nesting structure)".  Crucially there are *no* integrity constraints
here — those are deferred to applications (Section 2.3).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.text import tokenize_identifier


class SchemaError(ValueError):
    """Unknown tag or illegal nesting."""


@dataclass
class TagNode:
    """One tag and the tags allowed to nest inside it.

    A node with children denotes an *entity* tag (e.g. ``course``); a
    leaf denotes a *property* tag (e.g. ``title``).
    """

    name: str
    children: list["TagNode"] = field(default_factory=list)

    def child(self, name: str) -> "TagNode | None":
        """Direct child tag by name."""
        for node in self.children:
            if node.name == name:
                return node
        return None

    def is_entity(self) -> bool:
        """Entity tags may contain other tags."""
        return bool(self.children)

    def walk(self, prefix: tuple[str, ...] = ()) -> Iterator[tuple[tuple[str, ...], "TagNode"]]:
        """Yield (path, node) for this node and all descendants."""
        path = prefix + (self.name,)
        yield path, self
        for child in self.children:
            yield from child.walk(path)


def tag(name: str, *children: TagNode) -> TagNode:
    """Concise TagNode constructor."""
    return TagNode(name, list(children))


@dataclass
class LightweightSchema:
    """A named forest of tag trees.

    >>> schema = LightweightSchema("courses", [
    ...     tag("course", tag("title"), tag("instructor"), tag("time"))])
    >>> schema.is_valid_path("course.title")
    True
    >>> schema.is_valid_path("course.price")
    False
    """

    name: str
    roots: list[TagNode] = field(default_factory=list)

    def paths(self) -> list[str]:
        """All dotted tag paths, entities and properties alike."""
        found: list[str] = []
        for root in self.roots:
            for path, _node in root.walk():
                found.append(".".join(path))
        return found

    def node_at(self, path: str) -> TagNode | None:
        """Resolve a dotted path to its TagNode, or None."""
        parts = path.split(".")
        candidates = self.roots
        node: TagNode | None = None
        for part in parts:
            node = None
            for candidate in candidates:
                if candidate.name == part:
                    node = candidate
                    break
            if node is None:
                return None
            candidates = node.children
        return node

    def is_valid_path(self, path: str) -> bool:
        """True when ``path`` exists in the schema."""
        return self.node_at(path) is not None

    def is_entity_path(self, path: str) -> bool:
        """True when ``path`` names an entity (non-leaf) tag."""
        node = self.node_at(path)
        return node is not None and node.is_entity()

    def allowed_children(self, path: str | None = None) -> list[str]:
        """Tags allowed directly under ``path`` (or at top level)."""
        if path is None:
            return [root.name for root in self.roots]
        node = self.node_at(path)
        if node is None:
            raise SchemaError(f"unknown tag path {path!r} in schema {self.name}")
        return [child.name for child in node.children]

    def suggest(self, fragment: str, limit: int = 5) -> list[str]:
        """Rank tag paths by token overlap with ``fragment``.

        This is the schema-tree-side auto-complete the annotation tool
        shows while the user types.
        """
        wanted = set(tokenize_identifier(fragment, expand_abbreviations=True))
        scored: list[tuple[float, str]] = []
        for path in self.paths():
            have = set(tokenize_identifier(path, expand_abbreviations=True))
            if not wanted:
                overlap = 0.0
            else:
                overlap = len(wanted & have) / len(wanted | have)
            if overlap > 0:
                scored.append((overlap, path))
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [path for _score, path in scored[:limit]]


class SchemaRegistry:
    """The administrator's catalogue of schemas users may annotate with."""

    def __init__(self, schemas: Iterable[LightweightSchema] = ()):  # noqa: D107
        self._schemas: dict[str, LightweightSchema] = {}
        for schema in schemas:
            self.register(schema)

    def register(self, schema: LightweightSchema) -> None:
        """Add or replace a schema."""
        self._schemas[schema.name] = schema

    def get(self, name: str) -> LightweightSchema:
        """Look up a schema by name."""
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"no schema named {name!r}") from None

    def names(self) -> list[str]:
        """Registered schema names."""
        return list(self._schemas)

    def __len__(self) -> int:
        return len(self._schemas)


def university_schema() -> LightweightSchema:
    """The paper's running-example domain: courses, people, talks, papers."""
    return LightweightSchema(
        "university",
        [
            tag(
                "course",
                tag("title"),
                tag("number"),
                tag("instructor"),
                tag("time"),
                tag("location"),
                tag("textbook"),
                tag("description"),
                tag("ta", tag("name"), tag("email"), tag("office_hours")),
            ),
            tag(
                "person",
                tag("name"),
                tag("email"),
                tag("phone"),
                tag("office"),
                tag("homepage"),
                tag("position"),
            ),
            tag(
                "talk",
                tag("title"),
                tag("speaker"),
                tag("date"),
                tag("time"),
                tag("location"),
            ),
            tag(
                "paper",
                tag("title"),
                tag("author"),
                tag("venue"),
                tag("year"),
            ),
        ],
    )
