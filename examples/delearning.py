"""The DElearning scenario (Examples 1.1 and 3.1 of the paper).

Universities around the world each run their own REVERE node with an
independently designed course schema (Roma's is in Italian).  They are
connected only by *local* pairwise mappings — the exact Figure-2 graph —
yet a student at any university can query in the local vocabulary and
see every course in the coalition.  Finally Trento joins the network by
mapping to Roma alone ("It would be much easier for Trento to provide a
mapping to the Rome schema and leverage their previous mapping efforts").

Run:  python examples/delearning.py
"""

from repro.datasets.pdms_gen import (
    FIGURE2_EDGES,
    _install_peer,
    derive_mapping,
    figure2_pdms,
)
from repro.datasets.perturb import PerturbationConfig, perturb_schema
from repro.text.synonyms import italian_english_dictionary


def course_query(pdms, peer: str) -> set:
    """Ask for course titles in the peer's own vocabulary."""
    gold = pdms.generator_info["golds"][peer]
    course_rel = gold["course"]
    arity = len(pdms.peers[peer].schema[course_rel])
    variables = ", ".join(f"?v{i}" for i in range(arity))
    return pdms.answer(
        f"q(?v1) :- {peer}.{course_rel}({variables})",
        max_depth=24,
        max_rule_uses=3,
    )


def main() -> None:
    pdms = figure2_pdms(seed=7, courses=4)
    print("Figure-2 network:", ", ".join(pdms.peers))
    print("pairwise mapping edges:", FIGURE2_EDGES)
    print()

    # Each university has 4 local courses -- but through the transitive
    # closure of the mappings, every student sees all 24.
    for peer in ("tsinghua", "roma", "stanford"):
        titles = course_query(pdms, peer)
        print(f"courses visible from {peer:9s}: {len(titles)}")

    # Roma's schema really is in Italian:
    print(f"\nRoma's schema relations: {sorted(pdms.peers['roma'].schema)}")

    # --- Trento joins by mapping to Roma only -------------------------------
    reference = pdms.generator_info["reference"]
    trento_schema, trento_gold = perturb_schema(
        reference,
        "trento",
        seed=99,
        config=PerturbationConfig(
            rename_probability=0.9,
            translation=italian_english_dictionary(),
            restyle=False,
        ),
    )
    trento_schema.data = {}  # a brand-new node: no courses of its own yet
    _install_peer(pdms, "trento", trento_schema)
    roma_gold = pdms.generator_info["golds"]["roma"]
    added = derive_mapping(pdms, "trento", trento_gold, "roma", roma_gold, reference)
    pdms.generator_info["golds"]["trento"] = trento_gold
    print(f"\nTrento joined with {added} relation mappings to Roma alone")

    titles = course_query(pdms, "trento")
    print(f"courses visible from trento right after joining: {len(titles)}")
    print("(its own data is empty; everything arrives via roma, transitively)")


if __name__ == "__main__":
    main()
