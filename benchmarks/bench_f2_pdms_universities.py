"""Experiment F2 — Figure 2: the six-university PDMS.

Builds the exact Figure-2 topology (Stanford, Berkeley, MIT, Oxford,
Roma, Tsinghua; Roma in Italian) and measures, per peer: how much of
the coalition's data a local-vocabulary query reaches (completeness vs
certain answers), and the reformulation effort.  "As long as the
mapping graph is connected, any peer can access data at any other peer
by following schema mapping links."
"""

import pytest

from repro.bench import ResultTable, completeness
from repro.datasets.pdms_gen import figure2_pdms


def peer_course_query(pdms, peer: str) -> str:
    gold = pdms.generator_info["golds"][peer]
    course_rel = gold["course"]
    arity = len(pdms.peers[peer].schema[course_rel])
    variables = ", ".join(f"?v{i}" for i in range(arity))
    return f"q(?v1) :- {peer}.{course_rel}({variables})"


OPTIONS = {"max_depth": 24, "max_rule_uses": 3}


class TestF2Universities:
    @pytest.fixture(scope="class")
    def pdms(self):
        return figure2_pdms(seed=1, courses=4)

    def test_every_peer_sees_the_coalition(self, pdms, benchmark):
        table = ResultTable(
            "F2 (Figure 2): query completeness from every university",
            ["peer", "local courses", "answers", "certain", "completeness",
             "rewritings", "nodes expanded"],
        )
        for peer in pdms.peers:
            query = peer_course_query(pdms, peer)
            result = pdms.reformulate(query, **OPTIONS)
            answers = pdms.answer(query, **OPTIONS)
            certain = pdms.certain(query)
            gold = pdms.generator_info["golds"][peer]
            local = len(pdms.peers[peer].data[gold["course"]])
            table.add_row(
                peer,
                local,
                len(answers),
                len(certain),
                completeness(answers, certain),
                len(result.rewritings),
                result.nodes_expanded,
            )
            assert completeness(answers, certain) == 1.0
            assert len(answers) > local  # remote data arrived
        table.note(
            "every peer answers in its own vocabulary (Roma's is Italian) and "
            "reaches all six universities through pairwise mappings only."
        )
        table.show()
        benchmark(pdms.answer, peer_course_query(pdms, "tsinghua"), **OPTIONS)

    def test_connectivity_is_what_matters(self, pdms):
        # Exactly the figure's claim: remove nothing, graph connected.
        for peer in pdms.peers:
            assert pdms.reachable_from(peer) == set(pdms.peers)
