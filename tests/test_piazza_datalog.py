"""Tests for the datalog core: unification, evaluation, chase, containment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.piazza.datalog import (
    Atom,
    ConjunctiveQuery,
    Func,
    Rule,
    Var,
    apply_subst,
    certain_answers,
    chase,
    evaluate_query,
    evaluate_union,
    freeze,
    has_skolem,
    is_contained_in,
    is_ground,
    minimize_union,
    term_depth,
    unify,
    unify_atoms,
)
from repro.piazza.parse import parse_atom, parse_query, parse_rule

X, Y, Z = Var("x"), Var("y"), Var("z")


class TestTerms:
    def test_ground(self):
        assert is_ground("a")
        assert is_ground(Func("f", ("a",)))
        assert not is_ground(X)
        assert not is_ground(Func("f", (X,)))

    def test_skolem_detection(self):
        assert has_skolem(Func("f", ()))
        assert not has_skolem("a")

    def test_term_depth(self):
        assert term_depth("a") == 0
        assert term_depth(Func("f", ("a",))) == 1
        assert term_depth(Func("f", (Func("g", ("a",)),))) == 2


class TestUnify:
    def test_var_binds_constant(self):
        assert unify(X, "a") == {X: "a"}

    def test_constants_must_match(self):
        assert unify("a", "b") is None
        assert unify("a", "a") == {}

    def test_transitive_binding(self):
        subst = unify(X, Y)
        subst = unify(Y, "c", subst)
        assert apply_subst(X, subst) == "c"

    def test_occurs_check(self):
        assert unify(X, Func("f", (X,))) is None

    def test_func_unification(self):
        subst = unify(Func("f", (X,)), Func("f", ("a",)))
        assert subst == {X: "a"}
        assert unify(Func("f", (X,)), Func("g", ("a",))) is None

    def test_atom_unification(self):
        a = parse_atom("r(X, b)")
        b = parse_atom("r(a, Y)")
        subst = unify_atoms(a, b)
        assert apply_subst(Var("x"), subst) == "a"
        assert apply_subst(Var("y"), subst) == "b"

    def test_atom_arity_mismatch(self):
        assert unify_atoms(parse_atom("r(X)"), parse_atom("r(X, Y)")) is None

    def test_never_mutates_input(self):
        subst = {X: "a"}
        unify(Y, "b", subst)
        assert subst == {X: "a"}


class TestEvaluate:
    INSTANCE = {
        "r": {("a", "b"), ("b", "c"), ("c", "d")},
        "s": {("b",), ("d",)},
    }

    def test_single_atom(self):
        query = parse_query("q(X, Y) :- r(X, Y)")
        assert evaluate_query(query, self.INSTANCE) == self.INSTANCE["r"]

    def test_join(self):
        query = parse_query("q(X) :- r(X, Y), s(Y)")
        assert evaluate_query(query, self.INSTANCE) == {("a",), ("c",)}

    def test_chain_join(self):
        query = parse_query("q(X, Z) :- r(X, Y), r(Y, Z)")
        assert evaluate_query(query, self.INSTANCE) == {("a", "c"), ("b", "d")}

    def test_constant_in_query(self):
        query = parse_query("q(Y) :- r('a', Y)")
        assert evaluate_query(query, self.INSTANCE) == {("b",)}

    def test_repeated_variable(self):
        instance = {"r": {("a", "a"), ("a", "b")}}
        query = parse_query("q(X) :- r(X, X)")
        assert evaluate_query(query, instance) == {("a",)}

    def test_empty_relation(self):
        query = parse_query("q(X) :- missing(X)")
        assert evaluate_query(query, self.INSTANCE) == set()

    def test_union(self):
        q1 = parse_query("q(X) :- s(X)")
        q2 = parse_query("q(X) :- r(X, 'b')")
        assert evaluate_union([q1, q2], self.INSTANCE) == {("b",), ("d",), ("a",)}

    @given(
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25),
        st.sets(st.tuples(st.integers(0, 5)), max_size=6),
    )
    def test_join_matches_python(self, r, s):
        instance = {"r": r, "s": s}
        query = parse_query("q(X) :- r(X, Y), s(Y)")
        expected = {(x,) for (x, y) in r if (y,) in s}
        assert evaluate_query(query, instance) == expected


class TestChase:
    def test_gav_rule_derives(self):
        rules = [parse_rule("p(X) :- e(X, Y)")]
        chased = chase({"e": {("a", "b")}}, rules)
        assert ("a",) in chased["p"]

    def test_skolem_generation(self):
        # e(x) says x has some friend: friend(x, f(x)).
        rule = Rule(
            Atom("friend", (X, Func("f", (X,)))),
            (Atom("e", (X,)),),
        )
        chased = chase({"e": {("a",)}}, [rule])
        assert ("a", Func("f", ("a",))) in chased["friend"]

    def test_skolem_depth_capped(self):
        # friend(x, y) -> friend(y, f(y)): infinite without the cap.
        rule = Rule(
            Atom("friend", (Y, Func("f", (Y,)))),
            (Atom("friend", (X, Y)),),
        )
        chased = chase({"friend": {("a", "b")}}, [rule], max_skolem_depth=2)
        depths = [term_depth(t[1]) for t in chased["friend"]]
        assert max(depths) == 2

    def test_certain_answers_filter_skolems(self):
        rule = Rule(
            Atom("friend", (X, Func("f", (X,)))),
            (Atom("e", (X,)),),
        )
        query = parse_query("q(X, Y) :- friend(X, Y)")
        assert certain_answers(query, {"e": {("a",)}}, [rule]) == set()
        # ...but joining *through* the skolem works:
        rules = [
            rule,
            Rule(Atom("age", (Func("f", (X,)), "young")), (Atom("e", (X,)),)),
        ]
        query2 = parse_query("q(X, A) :- friend(X, Y), age(Y, A)")
        assert certain_answers(query2, {"e": {("a",)}}, rules) == {("a", "young")}


class TestContainment:
    def test_more_restrictive_contained(self):
        q1 = parse_query("q(X) :- r(X, Y), s(Y)")
        q2 = parse_query("q(X) :- r(X, Y)")
        assert is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_equivalent_renamings(self):
        q1 = parse_query("q(A) :- r(A, B)")
        q2 = parse_query("q(X) :- r(X, Y)")
        assert is_contained_in(q1, q2)
        assert is_contained_in(q2, q1)

    def test_constants(self):
        q1 = parse_query("q(X) :- r(X, 'a')")
        q2 = parse_query("q(X) :- r(X, Y)")
        assert is_contained_in(q1, q2)
        assert not is_contained_in(q2, q1)

    def test_arity_mismatch(self):
        q1 = parse_query("q(X) :- r(X, Y)")
        q2 = parse_query("q(X, Y) :- r(X, Y)")
        assert not is_contained_in(q1, q2)

    def test_freeze_produces_canonical_db(self):
        query = parse_query("q(X) :- r(X, Y), s(Y)")
        canonical_db, frozen_head = freeze(query)
        assert len(canonical_db["r"]) == 1
        assert len(frozen_head) == 1

    def test_minimize_union_drops_contained(self):
        q_specific = parse_query("q(X) :- r(X, Y), s(Y)")
        q_general = parse_query("q(X) :- r(X, Y)")
        kept = minimize_union([q_specific, q_general])
        assert kept == [q_general]

    def test_minimize_union_keeps_one_of_equivalent(self):
        q1 = parse_query("q(A) :- r(A, B)")
        q2 = parse_query("q(X) :- r(X, Y)")
        assert len(minimize_union([q1, q2])) == 1


class TestQueryHelpers:
    def test_safety(self):
        with pytest.raises(ValueError):
            parse_query("q(X, Z) :- r(X, Y)")

    def test_rename_preserves_structure(self):
        query = parse_query("q(X) :- r(X, Y)")
        renamed = query.rename("7")
        assert renamed.canonical() == query.canonical()
        assert renamed.variables().isdisjoint(query.variables())

    def test_canonical_invariant_under_renaming(self):
        q1 = parse_query("q(A, B) :- r(A, C), s(C, B)")
        q2 = parse_query("q(X, Y) :- r(X, Z), s(Z, Y)")
        assert q1.canonical() == q2.canonical()

    def test_canonical_distinguishes_constants(self):
        q1 = parse_query("q(X) :- r(X, 'a')")
        q2 = parse_query("q(X) :- r(X, 'b')")
        assert q1.canonical() != q2.canonical()
