"""Parallel execution runtimes for the PDMS stack (ISSUE 9).

Halevy et al.'s PDMS peers answer independently, yet until this layer
every fan-out in the reproduction ran one peer, one learner, one
subscriber at a time.  :mod:`repro.runtime` is the pluggable executor
abstraction those sites dispatch through:

* :class:`SerialRuntime` — the in-order oracle (the default
  everywhere; behavior is bit-identical to the pre-runtime code);
* :class:`ThreadPoolRuntime` — thread fan-out for the simulated-I/O
  sites: :meth:`DistributedExecutor.execute
  <repro.piazza.execution.DistributedExecutor.execute>` per-peer
  fetches, :class:`~repro.piazza.serving.ViewServer` updategram
  propagation and view maintenance;
* :class:`ProcessPoolRuntime` — process fan-out for CPU-bound
  picklable work (per-learner scoring in
  :meth:`~repro.corpus.match.meta.MetaLearner.predict_batch`).

The modeled-cost half lives in
:meth:`~repro.piazza.network.SimulatedNetwork.concurrent_round_trips`:
a batch of round trips dispatched concurrently is charged the makespan
of a ``workers``-wide schedule (the max over the batch with unlimited
workers) instead of the serial sum, while message/byte accounting stays
identical — benchmark C18 measures real modeled wall-clock parallelism
against the serial path, with answers asserted set-identical.

``tests/test_runtime.py`` is the concurrency battery: seeded
randomized parity against :class:`SerialRuntime` across all three
fan-out sites, worker-count sweeps, hypothesis task-order shuffles,
fault injection (a failing worker propagates deterministically and
leaves no partially-applied stats) and the multi-threaded
:mod:`repro.obs` stress tests.
"""

from repro.runtime.pools import (
    ExecutionRuntime,
    ProcessPoolRuntime,
    SerialRuntime,
    ThreadPoolRuntime,
)

__all__ = [
    "ExecutionRuntime",
    "ProcessPoolRuntime",
    "SerialRuntime",
    "ThreadPoolRuntime",
]
