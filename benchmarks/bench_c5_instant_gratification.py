"""Experiment C5 — instant gratification vs periodic crawling.

Section 2.2: applications update "the moment a user publishes new or
revised content ... This feedback cycle would be crippled if changes
relied upon periodic web crawls before they took effect."

The harness simulates an editing department over T logical ticks: each
tick one page is edited.  The immediate publisher re-extracts just that
page; the crawler re-reads *every* page once per period and serves
stale data in between.  Expected shape: immediate publish has zero
staleness and work proportional to the edits; the crawler trades
staleness against period-sized bursts of full-corpus work.
"""

import pytest

from repro.bench import ResultTable
from repro.datasets.html_gen import generate_department_site
from repro.mangrove import DepartmentCalendar, PeriodicCrawler, Publisher
from repro.rdf import TripleStore


def simulate_immediate(pages, edits: int):
    store = TripleStore()
    publisher = Publisher(store)
    for document, _fields in pages:
        publisher.publish(document)
    work = publisher.published_pages
    for tick in range(edits):
        document, _fields = pages[tick % len(pages)]
        publisher.publish(document)  # re-publish the edited page, now
    return {"staleness": 0, "page_reads": publisher.published_pages}


def simulate_crawler(pages, edits: int, period: int):
    store = TripleStore()
    crawler = PeriodicCrawler(store, period=period)
    for document, _fields in pages:
        crawler.register(document)
    for tick in range(edits):
        document, _fields = pages[tick % len(pages)]
        crawler.edit(document.url)
        crawler.tick()
    return {"staleness": crawler.staleness_ticks, "page_reads": crawler.pages_crawled}


class TestC5InstantGratification:
    def test_staleness_vs_work(self, benchmark):
        pages = generate_department_site("http://cs.edu", courses=15, people=5, seed=6)
        edits = 60
        table = ResultTable(
            "C5: staleness and page reads, immediate publish vs periodic crawl",
            ["strategy", "staleness (page-ticks)", "page reads"],
        )
        immediate = simulate_immediate(pages, edits)
        table.add_row("publish immediately", immediate["staleness"], immediate["page_reads"])
        crawler_results = {}
        for period in (2, 5, 10):
            result = simulate_crawler(pages, edits, period)
            crawler_results[period] = result
            table.add_row(f"crawl every {period}", result["staleness"], result["page_reads"])
        table.note(
            "immediate publish: zero staleness, one page read per edit. "
            "crawling: staleness grows with the period while every crawl "
            "re-reads the whole corpus."
        )
        table.show()
        assert immediate["staleness"] == 0
        # Longer periods: more staleness, fewer (but bulkier) crawls.
        assert crawler_results[10]["staleness"] > crawler_results[2]["staleness"]
        assert crawler_results[10]["page_reads"] < crawler_results[2]["page_reads"]
        # Even the fastest crawler serves stale data sometimes.
        assert crawler_results[2]["staleness"] > 0
        benchmark(simulate_immediate, pages, 20)

    def test_feedback_cycle_visible_in_apps(self):
        pages = generate_department_site("http://cs.edu", courses=3, people=0, seed=7)
        store = TripleStore()
        calendar = DepartmentCalendar(store)
        publisher = Publisher(store)
        refreshes_before = calendar.refresh_count
        for document, _fields in pages:
            publisher.publish(document)
        # One refresh per publish: the user sees her change immediately.
        assert calendar.refresh_count == refreshes_before + len(pages)
