"""Synonym tables and inter-language dictionaries.

Section 4.2.1 of the paper keeps statistics variants "depending on
whether we take into consideration word stemming, synonym tables,
inter-language dictionaries, or any combination of these three".  The
:class:`SynonymTable` maps terms into canonical synonym classes; the
:class:`TranslationTable` models the University-of-Rome example (Italian
schema terms mapping to English ones).
"""

from __future__ import annotations

from collections.abc import Iterable


class SynonymTable:
    """Union of synonym classes; lookups return a canonical representative.

    >>> table = SynonymTable([["teacher", "instructor", "professor"]])
    >>> table.canonical("professor") == table.canonical("teacher")
    True
    """

    def __init__(self, classes: Iterable[Iterable[str]] = ()):  # noqa: D107
        self._canonical: dict[str, str] = {}
        for synonym_class in classes:
            self.add_class(synonym_class)

    def add_class(self, terms: Iterable[str]) -> None:
        """Merge ``terms`` (and any classes they already belong to)."""
        terms = [term.lower() for term in terms]
        if not terms:
            return
        # Collect every term already reachable from the given ones.
        members = set(terms)
        for term in terms:
            root = self._canonical.get(term)
            if root is not None:
                members.update(
                    existing for existing, canon in self._canonical.items() if canon == root
                )
        canonical = min(members)
        for term in members:
            self._canonical[term] = canonical

    def canonical(self, term: str) -> str:
        """Canonical representative of ``term`` (itself if unknown)."""
        return self._canonical.get(term.lower(), term.lower())

    def are_synonyms(self, a: str, b: str) -> bool:
        """True if both terms normalize to the same synonym class."""
        return self.canonical(a) == self.canonical(b)

    def classes(self) -> list[set[str]]:
        """All synonym classes with two or more members."""
        by_root: dict[str, set[str]] = {}
        for term, root in self._canonical.items():
            by_root.setdefault(root, set()).add(term)
        return [members for members in by_root.values() if len(members) > 1]

    def __len__(self) -> int:
        return len(self._canonical)


class TranslationTable:
    """Bidirectional word dictionary between two languages.

    Used by the dataset generators to produce the paper's Rome/Trento
    scenario where one peer's schema uses Italian terms.
    """

    def __init__(self, pairs: Iterable[tuple[str, str]] = ()):  # noqa: D107
        self._forward: dict[str, str] = {}
        self._backward: dict[str, str] = {}
        for source, target in pairs:
            self.add(source, target)

    def add(self, source: str, target: str) -> None:
        """Register ``source`` (language A) <-> ``target`` (language B)."""
        self._forward[source.lower()] = target.lower()
        self._backward[target.lower()] = source.lower()

    def translate(self, term: str) -> str:
        """A->B translation; returns ``term`` unchanged when unknown."""
        return self._forward.get(term.lower(), term.lower())

    def translate_back(self, term: str) -> str:
        """B->A translation; returns ``term`` unchanged when unknown."""
        return self._backward.get(term.lower(), term.lower())

    def as_synonyms(self) -> SynonymTable:
        """View the dictionary as one synonym class per pair."""
        return SynonymTable([[source, target] for source, target in self._forward.items()])

    def __len__(self) -> int:
        return len(self._forward)


def default_synonyms() -> SynonymTable:
    """The built-in synonym classes for the paper's university domain."""
    return SynonymTable(
        [
            ["course", "class", "subject", "offering"],
            ["instructor", "teacher", "professor", "lecturer", "faculty"],
            ["student", "pupil", "enrollee"],
            ["schedule", "timetable", "calendar"],
            ["enrollment", "size", "capacity", "seats"],
            ["title", "name"],
            ["department", "dept", "division", "unit"],
            ["room", "location", "venue", "place"],
            ["phone", "telephone", "tel"],
            ["email", "mail", "e-mail"],
            ["grade", "mark", "score"],
            ["book", "textbook", "text"],
            ["assignment", "homework", "problemset"],
            ["talk", "seminar", "lecture", "colloquium"],
            ["paper", "publication", "article"],
            ["office", "bureau"],
            ["begin", "start"],
            ["end", "finish"],
            ["ta", "assistant", "grader"],
        ]
    )


def italian_english_dictionary() -> TranslationTable:
    """Small Italian<->English dictionary for the Rome/Trento scenario."""
    return TranslationTable(
        [
            ("corso", "course"),
            ("titolo", "title"),
            ("docente", "instructor"),
            ("studente", "student"),
            ("orario", "schedule"),
            ("aula", "room"),
            ("dipartimento", "department"),
            ("universita", "university"),
            ("iscrizione", "enrollment"),
            ("libro", "book"),
            ("compito", "assignment"),
            ("telefono", "phone"),
            ("ufficio", "office"),
            ("nome", "name"),
            ("anno", "year"),
            ("semestre", "semester"),
            ("descrizione", "description"),
            ("ora", "hour"),
            ("giorno", "day"),
            ("edificio", "building"),
        ]
    )
