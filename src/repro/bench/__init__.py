"""Benchmark harness helpers: result tables and metrics."""

from repro.bench.runner import ResultTable
from repro.bench.metrics import completeness, mean

__all__ = ["ResultTable", "completeness", "mean"]
