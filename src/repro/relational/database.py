"""Database catalog and fluent query builder with a rule-based planner.

The planner is deliberately simple (this is a substrate, not the paper's
contribution): equality predicates matching a hash index become index
scans, joins with equality keys become hash joins, everything else falls
back to scans and nested loops.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.relational.errors import QueryError, SchemaError
from repro.relational.expr import Expr, col, conjuncts
from repro.relational.ops import (
    Aggregate,
    Row,
    distinct,
    filter_rows,
    group_aggregate,
    hash_join,
    limit,
    nested_loop_join,
    project,
    project_exprs,
    rename,
    sort_rows,
)
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table


class Database:
    """A named collection of tables.

    ``engine_factory(table_name, schema) -> StorageEngine`` makes every
    table created here delegate its row state to a custom
    :class:`~repro.storage.engine.StorageEngine` (durable
    :class:`~repro.storage.log.LogEngine`, hash-partitioned
    :class:`~repro.storage.engine.ShardedEngine`, ...); without one,
    tables default to the seed-identical in-memory engine.  A
    per-table ``engine=`` on :meth:`create_table` overrides the
    factory.
    """

    def __init__(self, name: str = "db", engine_factory=None):  # noqa: D107
        self.name = name
        self.engine_factory = engine_factory
        self._tables: dict[str, Table] = {}

    # -- DDL --------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: list[Column | tuple[str, ColumnType] | str],
        primary_key: tuple[str, ...] | list[str] = (),
        engine=None,
    ) -> Table:
        """Create a table; columns may be ``Column``, ``(name, type)`` or name."""
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        normalized: list[Column] = []
        for column in columns:
            if isinstance(column, Column):
                normalized.append(column)
            elif isinstance(column, tuple):
                normalized.append(Column(column[0], column[1]))
            else:
                normalized.append(Column(column))
        schema = TableSchema(name, normalized, tuple(primary_key))
        if engine is None and self.engine_factory is not None:
            engine = self.engine_factory(name, schema)
        table = Table(schema, engine=engine)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and its data."""
        if name not in self._tables:
            raise SchemaError(f"no table {name!r}")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        """True if ``name`` exists in the catalog."""
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """All table names in creation order."""
        return list(self._tables)

    # -- DML --------------------------------------------------------------
    def insert(self, table: str, values: tuple | list | Mapping[str, object]) -> int:
        """Insert one row into ``table``."""
        return self.table(table).insert(values)

    def insert_many(self, table: str, rows: Iterable) -> int:
        """Insert many rows; returns the number inserted."""
        target = self.table(table)
        count = 0
        for values in rows:
            target.insert(values)
            count += 1
        return count

    # -- durability -------------------------------------------------------
    def checkpoint(self) -> None:
        """Snapshot every table's engine (no-op for volatile engines)."""
        for table in self._tables.values():
            table.checkpoint()

    def close(self) -> None:
        """Release every table engine's file handles."""
        for table in self._tables.values():
            table.close()

    # -- query ------------------------------------------------------------
    def query(self, table: str) -> "Query":
        """Start a fluent query over ``table``."""
        return Query(self, table)


def _scan_with_indexes(table: Table, predicate: Expr | None) -> Iterator[Row]:
    """Choose an access path: hash-index scan if a conjunct matches."""
    if predicate is not None:
        pairs = dict(predicate.equality_pairs())
        index = table.hash_index_for(set(pairs))
        if index is not None:
            key = tuple(pairs[name] for name in index.columns)
            for row_id in sorted(index.lookup(key)):
                row = table.get_row(row_id)
                if row is not None:
                    yield row
            return
        # Single-column range via sorted index.
        for conjunct in conjuncts(predicate):
            bounds = _range_bounds(conjunct)
            if bounds is None:
                continue
            column, lo, hi = bounds
            sorted_index = table.sorted_index_for(column)
            if sorted_index is not None:
                for row_id in sorted_index.range_lookup(lo, hi):
                    row = table.get_row(row_id)
                    if row is not None:
                        yield row
                return
    yield from table.scan()


def _range_bounds(expr: Expr) -> tuple[str, object, object] | None:
    from repro.relational.expr import BinaryExpr, ColumnRef, Literal

    if not isinstance(expr, BinaryExpr):
        return None
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        column, value = left.name, right.value
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        column, value = right.name, left.value
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    else:
        return None
    if op in ("<", "<="):
        return (column, None, value)
    if op in (">", ">="):
        return (column, value, None)
    return None


class Query:
    """Fluent SELECT builder: from -> join -> where -> group -> order.

    >>> db = Database()
    >>> _ = db.create_table("t", [("a", ColumnType.INT), ("b", ColumnType.INT)])
    >>> _ = db.insert_many("t", [(1, 10), (2, 20)])
    >>> db.query("t").where(col("a") == 2).select("b").rows()
    [{'b': 20}]
    """

    def __init__(self, database: Database, table: str):  # noqa: D107
        self._database = database
        self._table = table
        self._alias: str | None = None
        self._joins: list[tuple[str, str | None, list[str], list[str], Expr | None]] = []
        self._predicate: Expr | None = None
        self._projection: list[str] | None = None
        self._expr_projection: dict[str, Expr] | None = None
        self._renames: dict[str, str] = {}
        self._group_by: list[str] = []
        self._aggregates: list[Aggregate] = []
        self._order_by: list[tuple[str, bool]] = []
        self._distinct = False
        self._limit: int | None = None
        self._offset = 0

    # -- builder methods ---------------------------------------------------
    def alias(self, alias: str) -> "Query":
        """Qualify base-table columns as ``alias.column``."""
        self._alias = alias
        return self

    def join(
        self,
        table: str,
        on: tuple[list[str], list[str]] | None = None,
        condition: Expr | None = None,
        alias: str | None = None,
    ) -> "Query":
        """Join another table, either equi (``on``) or theta (``condition``)."""
        if on is None and condition is None:
            raise QueryError("join requires `on` keys or a `condition`")
        left_keys, right_keys = on if on is not None else ([], [])
        self._joins.append((table, alias, left_keys, right_keys, condition))
        return self

    def where(self, predicate: Expr) -> "Query":
        """AND a predicate into the filter."""
        self._predicate = predicate if self._predicate is None else (self._predicate & predicate)
        return self

    def select(self, *columns: str) -> "Query":
        """Project to the named columns."""
        self._projection = list(columns)
        return self

    def select_exprs(self, **outputs: Expr) -> "Query":
        """Project to computed expressions, keyed by output name."""
        self._expr_projection = dict(outputs)
        return self

    def rename_columns(self, renames: dict[str, str]) -> "Query":
        """Rename output columns (old -> new)."""
        self._renames.update(renames)
        return self

    def group_by(self, *columns: str) -> "Query":
        """Group by the named columns (combine with ``agg``)."""
        self._group_by = list(columns)
        return self

    def agg(self, func: str, column: str | None = None, output: str | None = None) -> "Query":
        """Add an aggregate; ``func`` in count/sum/avg/min/max/count_distinct."""
        expr = col(column) if column is not None else None
        self._aggregates.append(Aggregate(func, expr, output))
        return self

    def order_by(self, column: str, descending: bool = False) -> "Query":
        """Append a sort key."""
        self._order_by.append((column, descending))
        return self

    def unique(self) -> "Query":
        """SELECT DISTINCT."""
        self._distinct = True
        return self

    def take(self, count: int, offset: int = 0) -> "Query":
        """LIMIT/OFFSET."""
        self._limit = count
        self._offset = offset
        return self

    # -- execution ----------------------------------------------------------
    def _base_rows(self) -> Iterator[Row]:
        table = self._database.table(self._table)
        pushdown = self._predicate if not self._joins and self._alias is None else None
        rows: Iterator[Row] = _scan_with_indexes(table, pushdown)
        if self._alias:
            from repro.relational.ops import prefix_columns

            rows = prefix_columns(rows, self._alias)
        return rows

    def execute(self) -> Iterator[Row]:
        """Run the query, yielding row dicts."""
        rows = self._base_rows()
        for table_name, alias, left_keys, right_keys, condition in self._joins:
            right_table = self._database.table(table_name)
            right_rows: Iterable[Row] = right_table.scan()
            if alias:
                from repro.relational.ops import prefix_columns

                right_rows = prefix_columns(right_rows, alias)
            if condition is not None:
                rows = nested_loop_join(rows, list(right_rows), condition)
            else:
                rows = hash_join(rows, right_rows, left_keys, right_keys)
        if self._predicate is not None:
            rows = filter_rows(rows, self._predicate)
        if self._group_by or self._aggregates:
            rows = group_aggregate(rows, self._group_by, self._aggregates)
        if self._expr_projection is not None:
            rows = project_exprs(rows, self._expr_projection)
        elif self._projection is not None:
            rows = project(rows, self._projection)
        if self._renames:
            rows = rename(rows, self._renames)
        if self._distinct:
            rows = distinct(rows)
        if self._order_by:
            rows = iter(sort_rows(rows, self._order_by))
        if self._limit is not None:
            rows = limit(rows, self._limit, self._offset)
        return rows

    def rows(self) -> list[Row]:
        """Materialize the result."""
        return list(self.execute())

    def first(self) -> Row | None:
        """First result row or None."""
        return next(self.execute(), None)

    def count(self) -> int:
        """Number of result rows."""
        return sum(1 for _ in self.execute())

    def scalar(self) -> object:
        """Single value of the single column of the first row."""
        row = self.first()
        if row is None:
            return None
        if len(row) != 1:
            raise QueryError(f"scalar() requires single-column result, got {list(row)}")
        return next(iter(row.values()))
