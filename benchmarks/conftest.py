"""Shared fixtures for the experiment harness.

Every benchmark prints a ResultTable with the rows/series of the
corresponding paper figure or claim (run with ``-s`` to see them, or
read EXPERIMENTS.md, which records a reference run).

Observability: every bench module also leaves a JSON snapshot of the
process-wide :mod:`repro.obs` metrics registry in ``benchmarks/out/``
(``<module>.metrics.json``) — counters, gauges and p50/p95/p99
histogram summaries accumulated by that module's workloads.  The
registry is reset per module so each snapshot covers exactly one
bench.  (Benches that build their own ``Observability`` instances —
C15's isolated arms — don't show up here, by design.)
"""

import json
import os

import pytest

from repro import obs


def pytest_configure(config):
    # Benchmarks print experiment tables; keep them visible by default
    # when running the benchmarks directory explicitly with -s.
    pass


@pytest.fixture(scope="session")
def seed():
    return 1


@pytest.fixture(autouse=True, scope="module")
def dump_metrics_snapshot(request):
    """Reset the default registry per bench module, dump it afterwards."""
    registry = obs.default().metrics
    registry.reset()
    yield
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{request.module.__name__}.metrics.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.to_json(indent=2))
        handle.write("\n")
