"""QUERYADVISOR: querying unfamiliar data with the corpus (Section 4.4).

"A user should be able to access a database ... the schema of which she
does not know, and pose a query using her own terminology.  One can
imagine a tool that uses the corpus to propose reformulations of the
user's query that are well formed w.r.t. the schema at hand.  The tool
may propose a few such queries (possibly with example answers), and let
the user choose among them or refine them."

Two entry points:

* :meth:`QueryAdvisor.suggest_from_keywords` — U-WORLD input ("history
  instructor") to ranked, runnable conjunctive queries over the target
  schema, each with example answers;
* :meth:`QueryAdvisor.reformulate` — a query written in the *user's own*
  vocabulary (own relation/attribute names) rewritten against the
  target schema, using the same matching machinery that powers
  MATCHINGADVISOR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.match.matchers import HybridMatcher, PairwiseMatcher
from repro.corpus.model import Corpus, CorpusSchema
from repro.corpus.stats import BasicStatistics, StatisticsOptions
from repro.piazza.datalog import Atom, ConjunctiveQuery, Var, evaluate_query
from repro.piazza.parse import parse_query
from repro.text import default_synonyms, jaro_winkler, token_set_similarity


@dataclass
class QuerySuggestion:
    """One proposed well-formed query with sample answers."""

    query: ConjunctiveQuery
    text: str
    score: float
    matched_terms: dict = field(default_factory=dict)  # keyword -> element path
    examples: list = field(default_factory=list)

    def __str__(self) -> str:
        return f"{self.text}   (score {self.score:.2f})"


def _schema_instance(schema: CorpusSchema) -> dict:
    """The schema's data as a datalog instance keyed by relation name."""
    return {
        relation: {tuple(row) for row in rows}
        for relation, rows in schema.data.items()
    }


class QueryAdvisor:
    """Propose well-formed queries over a schema the user does not know."""

    def __init__(
        self,
        corpus: Corpus | None = None,
        options: StatisticsOptions | None = None,
        matcher: PairwiseMatcher | None = None,
    ):  # noqa: D107
        self.corpus = corpus
        self.options = options or StatisticsOptions(synonyms=default_synonyms())
        self.matcher = matcher or HybridMatcher(synonyms=default_synonyms())
        self.stats = (
            BasicStatistics(corpus, self.options) if corpus is not None else None
        )

    # -- keyword entry point ---------------------------------------------------
    def _element_score(self, keyword: str, path: str) -> float:
        """How well one keyword denotes one schema element."""
        local = path.rsplit(".", 1)[-1]
        score = max(
            jaro_winkler(keyword.lower(), local.lower()),
            token_set_similarity(keyword, local),
        )
        if self.options.normalize(keyword) == self.options.normalize(local):
            score = 1.0
        # Corpus help: terms whose usage profile resembles the keyword's
        # also vote for the element (the "similar names" statistic).
        # Routed through the CorpusSearchEngine: the LRU cache makes the
        # per-(keyword, attribute) repetition of this lookup O(1) after
        # the first retrieval.
        if score < 0.95 and self.stats is not None:
            similar = dict(self.stats.similar_names(keyword, limit=5))
            similarity = similar.get(self.options.normalize(local))
            if similarity is not None:
                score = max(score, 0.6 + 0.3 * similarity)
        return score

    def suggest_from_keywords(
        self,
        keywords: list[str] | str,
        schema: CorpusSchema,
        limit: int = 3,
        min_score: float = 0.5,
        examples: int = 3,
    ) -> list[QuerySuggestion]:
        """Ranked conjunctive queries covering the keywords.

        Each suggestion selects one relation of ``schema`` (keywords
        must not straddle relations — a deliberate simplification),
        projects the attributes the keywords matched, and carries up to
        ``examples`` sample answers evaluated over the schema's data.
        """
        if isinstance(keywords, str):
            keywords = keywords.split()
        suggestions: list[QuerySuggestion] = []
        instance = _schema_instance(schema)
        for relation, attributes in schema.relations.items():
            matched: dict[str, tuple[str, float]] = {}
            for keyword in keywords:
                best_path, best_score = None, min_score
                for attribute in attributes:
                    path = f"{relation}.{attribute}"
                    score = self._element_score(keyword, path)
                    if score > best_score:
                        best_path, best_score = path, score
                # The relation name itself may be what the keyword means
                # (slightly discounted: attribute evidence is more
                # specific than naming the table).
                relation_score = 0.85 * self._element_score(keyword, relation)
                if relation_score > best_score:
                    best_path, best_score = relation, relation_score
                if best_path is not None:
                    matched[keyword] = (best_path, best_score)
            if not matched:
                continue
            coverage = len(matched) / len(keywords)
            strength = sum(score for _p, score in matched.values()) / len(matched)
            projected = [
                path.rsplit(".", 1)[-1]
                for path, _score in matched.values()
                if "." in path
            ] or attributes[:1]
            variables = {
                attribute: Var(f"v{index}") for index, attribute in enumerate(attributes)
            }
            head = Atom("q", tuple(variables[a] for a in projected))
            body = (Atom(relation, tuple(variables[a] for a in attributes)),)
            query = ConjunctiveQuery(head, body)
            answers = sorted(evaluate_query(query, instance), key=str)[:examples]
            text = (
                f"q({', '.join(repr(variables[a]) for a in projected)}) :- "
                f"{relation}({', '.join(repr(variables[a]) for a in attributes)})"
            )
            suggestions.append(
                QuerySuggestion(
                    query=query,
                    text=text,
                    score=0.7 * coverage + 0.3 * strength,
                    matched_terms={k: p for k, (p, _s) in matched.items()},
                    examples=answers,
                )
            )
        suggestions.sort(key=lambda s: (-s.score, s.text))
        return suggestions[:limit]

    # -- own-vocabulary query entry point --------------------------------------------
    def reformulate(
        self,
        user_query: str | ConjunctiveQuery,
        user_schema: CorpusSchema,
        target_schema: CorpusSchema,
        min_score: float = 0.4,
    ) -> QuerySuggestion | None:
        """Rewrite a query phrased in the user's own schema vocabulary.

        The user's schema (their mental model, possibly just the
        relations referenced by the query) is matched against the target
        schema; atoms are renamed and argument positions permuted
        according to the attribute correspondences.  Returns None when
        some referenced relation has no credible counterpart.
        """
        if isinstance(user_query, str):
            user_query = parse_query(user_query)
        correspondences = self.matcher.match(user_schema, target_schema).filter(min_score)
        attribute_map = correspondences.mapping()
        rewritten_atoms: list[Atom] = []
        matched_terms: dict[str, str] = {}
        total_score = 0.0
        for atom in user_query.body:
            relation = atom.predicate
            attributes = user_schema.relations.get(relation)
            if attributes is None or len(attributes) != len(atom.args):
                return None
            # Find the target relation most of this atom's attributes map to.
            votes: dict[str, int] = {}
            for attribute in attributes:
                target_path = attribute_map.get(f"{relation}.{attribute}")
                if target_path is not None:
                    votes[target_path.split(".", 1)[0]] = (
                        votes.get(target_path.split(".", 1)[0], 0) + 1
                    )
            if not votes:
                return None
            target_relation = max(votes, key=lambda r: votes[r])
            target_attributes = target_schema.relations[target_relation]
            # Place the user's arguments at the mapped positions; unmapped
            # target positions become fresh variables.
            args: list = [
                Var(f"fresh_{target_relation}_{index}")
                for index in range(len(target_attributes))
            ]
            for position, attribute in enumerate(attributes):
                target_path = attribute_map.get(f"{relation}.{attribute}")
                if target_path is None or not target_path.startswith(
                    f"{target_relation}."
                ):
                    continue
                target_attribute = target_path.split(".", 1)[1]
                args[target_attributes.index(target_attribute)] = atom.args[position]
                matched_terms[f"{relation}.{attribute}"] = target_path
            rewritten_atoms.append(Atom(target_relation, tuple(args)))
            total_score += votes[target_relation] / len(attributes)
        rewritten = ConjunctiveQuery(user_query.head, tuple(rewritten_atoms))
        if not rewritten.is_safe():
            return None
        instance = _schema_instance(target_schema)
        answers = sorted(evaluate_query(rewritten, instance), key=str)[:3]
        return QuerySuggestion(
            query=rewritten,
            text=repr(rewritten),
            score=total_score / max(len(user_query.body), 1),
            matched_terms=matched_terms,
            examples=answers,
        )
