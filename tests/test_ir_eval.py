"""Tests for the IR eval harness (repro.eval) and its golden sets.

Three contracts:

* **metrics** — MRR / nDCG@k / P@k match hand-computed values on known
  rankings, including the degenerate cases (nothing retrieved, nothing
  relevant);
* **golden sets** — every query carries usable ground truth: at least
  one relevant corpus schema, relevance sets partition by lineage, the
  perturbation gold round-trips through ``mapping_to_reference``, and
  the whole set is deterministic under a fixed seed;
* **harness / gate** — the report schema is stable, the baseline
  comparison passes on itself, fails on a regression beyond epsilon,
  tolerates drops within epsilon, and refuses config mismatches.
"""

import copy
import json

import pytest

from repro.datasets.perturb import mapping_to_reference
from repro.eval.golden import (
    SPLITS,
    corpus_domain_members,
    generate_golden_set,
)
from repro.eval.harness import (
    DEFAULT_BASELINE,
    EvalConfig,
    compare_to_baseline,
    run_ir_eval,
)
from repro.eval.metrics import (
    dcg_at_k,
    mean_metrics,
    mrr,
    ndcg_at_k,
    precision_at_k,
)

#: A tiny config so harness tests stay fast.
TINY = EvalConfig(corpus_size=24, domains=3, queries_per_split=3, courses=2)


# -- metrics -------------------------------------------------------------------

class TestMetrics:
    def test_mrr(self):
        assert mrr(["a", "b", "c"], {"b"}) == pytest.approx(0.5)
        assert mrr(["a"], {"a"}) == 1.0
        assert mrr(["a", "b"], {"z"}) == 0.0
        assert mrr([], {"a"}) == 0.0

    def test_dcg_and_ndcg(self):
        # Relevant at ranks 1 and 3: DCG = 1 + 1/log2(4).
        ranked = ["a", "x", "b"]
        assert dcg_at_k(ranked, {"a", "b"}, 3) == pytest.approx(1.5)
        # Ideal for 2 relevant in top 3: 1 + 1/log2(3).
        assert ndcg_at_k(ranked, {"a", "b"}, 3) == pytest.approx(
            1.5 / (1.0 + 1.0 / 1.5849625007211562)
        )
        assert ndcg_at_k(["a"], {"a"}, 10) == 1.0
        assert ndcg_at_k(["x"], set(), 10) == 0.0

    def test_precision_at_k_keeps_denominator_k(self):
        assert precision_at_k(["a", "x"], {"a"}, 2) == 0.5
        assert precision_at_k(["a"], {"a"}, 5) == pytest.approx(0.2)
        assert precision_at_k([], {"a"}, 5) == 0.0
        assert precision_at_k(["a"], {"a"}, 0) == 0.0

    def test_mean_metrics(self):
        merged = mean_metrics([{"mrr": 1.0}, {"mrr": 0.0}])
        assert merged == {"mrr": 0.5}
        assert mean_metrics([]) == {}


# -- golden sets ---------------------------------------------------------------

class TestGoldenSets:
    def test_every_query_has_relevant_corpus_schemas(self):
        golden = generate_golden_set(
            corpus_size=24, domains=3, seed=5, queries_per_split=4
        )
        assert len(golden.queries) == 8
        for query in golden.queries:
            assert len(query.relevant) >= 1
            assert query.relevant <= set(golden.corpus.schemas)
            assert query.schema.name not in golden.corpus.schemas

    def test_relevance_partitions_by_lineage(self):
        members = corpus_domain_members(10, 3)
        assert sum(len(m) for m in members.values()) == 10
        union = set()
        for names in members.values():
            assert not (union & names)
            union |= names
        golden = generate_golden_set(
            corpus_size=24, domains=3, seed=5, queries_per_split=4
        )
        expected = corpus_domain_members(24, 3)
        for query in golden.queries:
            assert query.relevant == expected[query.domain]

    def test_gold_round_trips_through_mapping_to_reference(self):
        golden = generate_golden_set(
            corpus_size=24, domains=3, seed=5, queries_per_split=4
        )
        for query in golden.queries:
            assert query.gold, query.qid
            inverted = mapping_to_reference(query.gold)
            assert inverted, query.qid
            query_paths = {
                f"{relation}.{attribute}"
                for relation, attributes in query.schema.relations.items()
                for attribute in attributes
            }
            for variant_path, reference_path in inverted.items():
                # Inversion restricted to attribute paths, targets the
                # query schema, and round-trips exactly.
                assert "." in reference_path
                assert variant_path in query_paths
                assert query.gold[reference_path] == variant_path

    def test_splits_differ_only_in_query_vocabulary(self):
        golden = generate_golden_set(
            corpus_size=24, domains=3, seed=5, queries_per_split=4
        )
        clean = golden.split("clean")
        perturbed = golden.split("perturbed")
        assert len(clean) == len(perturbed) == 4
        assert {q.split for q in golden.queries} == set(SPLITS)
        # Same lineage coverage either way.
        assert [q.domain for q in clean] == [q.domain for q in perturbed]

    def test_deterministic_under_fixed_seed(self):
        a = generate_golden_set(corpus_size=24, domains=3, seed=5, queries_per_split=4)
        b = generate_golden_set(corpus_size=24, domains=3, seed=5, queries_per_split=4)
        assert [q.qid for q in a.queries] == [q.qid for q in b.queries]
        for qa, qb in zip(a.queries, b.queries):
            assert qa.schema.relations == qb.schema.relations
            assert qa.relevant == qb.relevant
            assert qa.gold == qb.gold
        for name, schema in a.corpus.schemas.items():
            assert schema.relations == b.corpus.schemas[name].relations

    def test_seed_moves_the_set(self):
        a = generate_golden_set(corpus_size=24, domains=3, seed=5, queries_per_split=4)
        b = generate_golden_set(corpus_size=24, domains=3, seed=6, queries_per_split=4)
        assert any(
            qa.schema.relations != qb.schema.relations
            for qa, qb in zip(a.queries, b.queries)
        )


# -- harness + regression gate -------------------------------------------------

class TestHarness:
    def test_report_schema_and_determinism(self):
        report = run_ir_eval(TINY)
        assert report["config"]["corpus_size"] == 24
        for strategy in ("sparse", "dense", "hybrid"):
            result = report["strategies"][strategy]
            for scope in (result["overall"], *result["splits"].values()):
                assert set(scope) == {"mrr", "ndcg@10", "p@5", "p@10"}
                for value in scope.values():
                    assert 0.0 <= value <= 1.0
        assert run_ir_eval(TINY) == report

    def test_compare_to_baseline_gate(self):
        report = run_ir_eval(TINY, strategies=("sparse",))
        assert compare_to_baseline(report, report) == []

        regressed = copy.deepcopy(report)
        regressed["strategies"]["sparse"]["overall"]["mrr"] -= 0.5
        problems = compare_to_baseline(regressed, report, epsilon=0.02)
        assert any("sparse/overall/mrr" in p for p in problems)

        within_epsilon = copy.deepcopy(report)
        within_epsilon["strategies"]["sparse"]["overall"]["mrr"] -= 0.01
        assert compare_to_baseline(within_epsilon, report, epsilon=0.02) == []

        improved = copy.deepcopy(report)
        improved["strategies"]["sparse"]["overall"]["mrr"] = 1.0
        assert compare_to_baseline(improved, report) == []

    def test_compare_rejects_config_mismatch_and_missing_strategy(self):
        report = run_ir_eval(TINY, strategies=("sparse",))
        other = copy.deepcopy(report)
        other["config"]["corpus_size"] = 999
        assert any("config mismatch" in p for p in compare_to_baseline(other, report))

        pruned = copy.deepcopy(report)
        extra = copy.deepcopy(report)
        extra["strategies"]["dense"] = copy.deepcopy(report["strategies"]["sparse"])
        assert any(
            "missing" in p for p in compare_to_baseline(pruned, extra)
        )

    def test_committed_baseline_parses_and_has_gated_strategies(self):
        baseline = json.loads(DEFAULT_BASELINE.read_text(encoding="utf-8"))
        assert set(baseline["strategies"]) == {"sparse", "dense", "hybrid"}
        for result in baseline["strategies"].values():
            assert {"clean", "perturbed"} == set(result["splits"])
