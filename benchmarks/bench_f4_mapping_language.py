"""Experiment F4 — Figure 4: the Berkeley-to-MIT template mapping.

Executes the *exact* mapping printed in the figure over generated
Berkeley schedules of growing size, checks the output conforms to MIT's
DTD (Figure 3), and times mapping execution.
"""

import pytest

from repro.bench import ResultTable
from repro.xmlmodel import TemplateMapping, parse_dtd

from bench_f3_peer_schemas import MIT_DTD, berkeley_document

FIGURE4_MAPPING = """
<catalog>
  <course> {$c = document("Berkeley.xml")/schedule/college/dept}
    <name> $c/name/text() </name>
    <subject> { $s = $c/course }
      <title> $s/title/text() </title>
      <enrollment> $s/size/text() </enrollment>
    </subject>
  </course>
</catalog>
"""


class TestF4MappingLanguage:
    def test_mapping_scaling(self, benchmark):
        mapping = TemplateMapping.parse(FIGURE4_MAPPING)
        mit_dtd = parse_dtd(MIT_DTD)
        table = ResultTable(
            "F4 (Figure 4): Berkeley->MIT template mapping execution",
            ["berkeley courses", "mit courses", "mit subjects", "valid vs MIT DTD"],
        )
        for depts, courses in ((2, 5), (5, 20), (10, 50)):
            source = berkeley_document(1, depts, courses)
            result = mapping.apply({"Berkeley.xml": source})
            mit_courses = result.child_elements("course")
            subjects = sum(len(c.child_elements("subject")) for c in mit_courses)
            valid = mit_dtd.validate(result) == []
            table.add_row(depts * courses, len(mit_courses), subjects, valid)
            assert len(mit_courses) == depts  # one per Berkeley dept
            assert subjects == depts * courses
            assert valid
        table.note(
            "template annotations: one MIT <course> per Berkeley dept binding, "
            "one <subject> per nested course binding — verbatim Figure 4."
        )
        table.show()
        source = berkeley_document(1, 5, 20)
        benchmark(mapping.apply, {"Berkeley.xml": source})

    def test_values_transported_exactly(self):
        mapping = TemplateMapping.parse(FIGURE4_MAPPING)
        source = berkeley_document(1, 1, 3, seed=5)
        result = mapping.apply({"Berkeley.xml": source})
        titles_in = [t for t in source.descendants() if t.tag == "title"]
        titles_out = [t for t in result.descendants() if t.tag == "title"]
        assert [t.text_content() for t in titles_in] == [
            t.text_content() for t in titles_out
        ]
