"""Tests for updategrams and counting-based incremental view maintenance."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.piazza import IncrementalView, Updategram
from repro.piazza.parse import parse_query


class TestUpdategram:
    def test_apply_to_instance(self):
        instance = {"r": {(1,)}}
        gram = Updategram().insert("r", [(2,)]).delete("r", [(1,)])
        gram.apply_to(instance)
        assert instance["r"] == {(2,)}

    def test_size_and_relations(self):
        gram = Updategram().insert("r", [(1,), (2,)]).delete("s", [(3,)])
        assert gram.size() == 3
        assert gram.relations() == {"r", "s"}

    def test_combine_later_wins(self):
        first = Updategram().insert("r", [(1,)])
        second = Updategram().delete("r", [(1,)])
        combined = Updategram.combine([first, second])
        instance = {"r": set()}
        combined.apply_to(instance)
        assert instance["r"] == set()

    def test_combine_delete_then_insert(self):
        first = Updategram().delete("r", [(1,)])
        second = Updategram().insert("r", [(1,)])
        combined = Updategram.combine([first, second])
        instance = {"r": {(1,)}}
        combined.apply_to(instance)
        assert instance["r"] == {(1,)}


class TestIncrementalView:
    def make_view(self):
        query = parse_query("v(X, Z) :- r(X, Y), s(Y, Z)")
        instance = {
            "r": {(1, 10), (2, 20)},
            "s": {(10, "a"), (20, "b")},
        }
        return IncrementalView(query, instance)

    def test_initial_state(self):
        view = self.make_view()
        assert view.tuples() == {(1, "a"), (2, "b")}

    def test_insert_propagates(self):
        view = self.make_view()
        delta = view.apply(Updategram().insert("r", [(3, 10)]))
        assert delta.inserted == {(3, "a")}
        assert view.tuples() == {(1, "a"), (2, "b"), (3, "a")}

    def test_delete_propagates(self):
        view = self.make_view()
        delta = view.apply(Updategram().delete("s", [(20, "b")]))
        assert delta.deleted == {(2, "b")}

    def test_alternative_derivation_survives_delete(self):
        query = parse_query("v(X) :- r(X, Y)")
        view = IncrementalView(query, {"r": {(1, "a"), (1, "b")}})
        delta = view.apply(Updategram().delete("r", [(1, "a")]))
        assert delta.deleted == set()
        assert view.tuples() == {(1,)}

    def test_duplicate_insert_is_noop(self):
        view = self.make_view()
        delta = view.apply(Updategram().insert("r", [(1, 10)]))
        assert delta.inserted == set()
        assert view.counts[(1, "a")] == 1  # count not double-incremented

    def test_delete_of_absent_row_is_noop(self):
        view = self.make_view()
        delta = view.apply(Updategram().delete("r", [(9, 9)]))
        assert delta.inserted == set() and delta.deleted == set()

    def test_overlapping_insert_delete_insert_wins(self):
        # ``apply_to`` deletes first, then inserts — a row in both sets
        # ends up PRESENT.  The counting delta must agree instead of
        # decrementing a derivation the instance keeps.
        query = parse_query("v(X) :- r(X, Y)")
        view = IncrementalView(query, {"r": {(1, 10)}})
        gram = Updategram().insert("r", [(1, 10)]).delete("r", [(1, 10)])
        delta = view.apply(gram)
        assert delta.inserted == set() and delta.deleted == set()
        assert view.tuples() == {(1,)}
        assert view.instance["r"] == {(1, 10)}
        assert view.counts[(1,)] == 1  # count untouched, not dropped to 0

    def test_overlapping_gram_on_absent_row_is_plain_insert(self):
        query = parse_query("v(X) :- r(X, Y)")
        view = IncrementalView(query, {"r": set()})
        delta = view.apply(Updategram().insert("r", [(2, 20)]).delete("r", [(2, 20)]))
        assert delta.inserted == {(2,)}
        assert view.tuples() == {(2,)}

    def test_mixed_updategram(self):
        view = self.make_view()
        gram = Updategram().insert("r", [(3, 20)]).delete("r", [(1, 10)])
        delta = view.apply(gram)
        assert delta.inserted == {(3, "b")}
        assert delta.deleted == {(1, "a")}

    def test_self_join_view(self):
        query = parse_query("v(X, Z) :- e(X, Y), e(Y, Z)")
        view = IncrementalView(query, {"e": {(1, 2), (2, 3)}})
        assert view.tuples() == {(1, 3)}
        delta = view.apply(Updategram().insert("e", [(3, 4)]))
        assert delta.inserted == {(2, 4)}
        delta = view.apply(Updategram().delete("e", [(2, 3)]))
        assert view.tuples() == {(3, 4)} if (3, 4) in view.tuples() else True
        assert (1, 3) not in view.tuples()

    def test_recompute_equals_incremental(self):
        query = parse_query("v(X, Z) :- r(X, Y), s(Y, Z)")
        instance = {"r": {(1, 10), (2, 20)}, "s": {(10, "a"), (20, "b")}}
        incremental = IncrementalView(query, instance)
        recomputed = IncrementalView(query, instance)
        gram = Updategram().insert("r", [(3, 10)]).delete("s", [(20, "b")])
        incremental.apply(gram)
        recomputed.recompute(
            Updategram(inserts=dict(gram.inserts), deletes=dict(gram.deletes))
        )
        assert incremental.tuples() == recomputed.tuples()

    def test_work_counter(self):
        view = self.make_view()
        view.reset_work()
        view.apply(Updategram().insert("r", [(5, 10)]))
        incremental_work = view.work()
        view.reset_work()
        view.recompute(Updategram().insert("r", [(6, 10)]))
        recompute_work = view.work()
        assert incremental_work < recompute_work


ROWS = st.tuples(st.integers(0, 3), st.integers(0, 3))


@st.composite
def updategrams(draw, relations=("r", "s")):
    gram = Updategram()
    for relation in relations:
        inserts = draw(st.sets(ROWS, max_size=4))
        deletes = draw(st.sets(ROWS, max_size=4))
        if inserts:
            gram.insert(relation, inserts)
        if deletes:
            gram.delete(relation, deletes)
    return gram


class TestCombineLaw:
    """``combine`` must equal sequential application — "later wins"."""

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(updategrams(), min_size=1, max_size=4),
        st.sets(ROWS, max_size=6),
        st.sets(ROWS, max_size=6),
    )
    def test_combine_equals_sequential_application(self, grams, base_r, base_s):
        sequential = {"r": set(base_r), "s": set(base_s)}
        for gram in grams:
            gram.apply_to(sequential)
        combined_instance = Updategram.combine(grams).apply_to(
            {"r": set(base_r), "s": set(base_s)}
        )
        assert combined_instance == sequential

    @settings(max_examples=100, deadline=None)
    @given(updategrams(), updategrams(), st.sets(ROWS, max_size=6))
    def test_pairwise_later_wins(self, first, second, base):
        instance = {"r": set(base), "s": set()}
        second.apply_to(first.apply_to(instance))
        combined = Updategram.combine([first, second]).apply_to(
            {"r": set(base), "s": set()}
        )
        assert combined == instance

    @settings(max_examples=100, deadline=None)
    @given(st.lists(updategrams(), max_size=4))
    def test_size_and_relations_consistency(self, grams):
        combined = Updategram.combine(grams)
        assert combined.relations() == set(combined.inserts) | set(combined.deletes)
        assert combined.size() == sum(
            len(rows) for rows in combined.inserts.values()
        ) + sum(len(rows) for rows in combined.deletes.values())
        assert combined.relations() <= set().union(
            *(gram.relations() for gram in grams), set()
        )
        # Combination resolves conflicts: no row is both inserted and
        # deleted for the same relation.
        for relation in combined.relations():
            assert not (
                combined.inserts.get(relation, set())
                & combined.deletes.get(relation, set())
            )


class TestQualifyRestrict:
    def test_qualify_prefixes_every_relation(self):
        gram = Updategram().insert("c", [(1,)]).delete("d", [(2,)])
        qualified = gram.qualify("uw")
        assert qualified.relations() == {"uw!c", "uw!d"}
        assert qualified.inserts["uw!c"] == {(1,)}
        assert qualified.deletes["uw!d"] == {(2,)}
        assert gram.relations() == {"c", "d"}  # original untouched

    def test_restrict_keeps_only_named_relations(self):
        gram = Updategram().insert("a", [(1,)]).insert("b", [(2,)]).delete("a", [(3,)])
        narrowed = gram.restrict({"a"})
        assert narrowed.relations() == {"a"}
        assert narrowed.inserts["a"] == {(1,)} and narrowed.deletes["a"] == {(3,)}
        assert gram.restrict(()).size() == 0


class TestApplyAliasingParity:
    """The touched-relations copy must match the full-copy seed bitwise."""

    QUERY = "v(X, Z) :- r(X, Y), s(Y, Z)"

    @settings(max_examples=60, deadline=None)
    @given(
        st.sets(ROWS, max_size=8),
        st.sets(ROWS, max_size=8),
        st.lists(updategrams(), max_size=5),
    )
    def test_apply_matches_apply_brute_force(self, base_r, base_s, grams):
        base = {"r": set(base_r), "s": set(base_s), "untouched": {(9, 9)}}
        fast = IncrementalView(parse_query(self.QUERY), base)
        slow = IncrementalView(parse_query(self.QUERY), base)
        oracle = IncrementalView(parse_query(self.QUERY), base)
        for gram in grams:
            copies = [
                Updategram(
                    inserts={k: set(v) for k, v in gram.inserts.items()},
                    deletes={k: set(v) for k, v in gram.deletes.items()},
                )
                for _ in range(2)
            ]
            fast_delta = fast.apply(gram)
            slow_delta = slow.apply_brute_force(copies[0])
            oracle.recompute(copies[1])  # ground truth, incl. overlap grams
            assert fast_delta.inserted == slow_delta.inserted
            assert fast_delta.deleted == slow_delta.deleted
            assert fast.counts == slow.counts
            assert fast.instance == slow.instance
            assert fast.tuples() == slow.tuples() == oracle.tuples()
            assert fast.instance == oracle.instance
        # Identical work metric: the delta passes are the same joins.
        assert fast.work() == slow.work()

    def test_untouched_relations_are_aliased_not_copied(self):
        view = IncrementalView(
            parse_query(self.QUERY), {"r": {(1, 2)}, "s": {(2, 3)}}
        )
        s_rows = view.instance["s"]
        view.apply(Updategram().insert("r", [(4, 2)]))
        assert view.instance["s"] is s_rows  # aliased across the gram
        assert view.instance["r"] is not s_rows
        view.apply(Updategram().delete("s", [(2, 3)]))
        assert view.instance["s"] is not s_rows  # copied once touched
        assert s_rows == {(2, 3)}  # ...and the old set never mutated


@st.composite
def update_sequences(draw):
    base = draw(
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=12)
    )
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.tuples(st.integers(0, 4), st.integers(0, 4)),
            ),
            max_size=12,
        )
    )
    return base, operations


class TestIncrementalMatchesRecompute:
    @settings(max_examples=60, deadline=None)
    @given(update_sequences())
    def test_random_update_sequences(self, data):
        base, operations = data
        query = parse_query("v(X, Z) :- e(X, Y), e(Y, Z)")
        view = IncrementalView(query, {"e": set(base)})
        shadow = set(base)
        for op, row in operations:
            if op == "insert":
                view.apply(Updategram().insert("e", [row]))
                shadow.add(row)
            else:
                view.apply(Updategram().delete("e", [row]))
                shadow.discard(row)
            expected = {(x, z) for (x, y) in shadow for (y2, z) in shadow if y == y2}
            assert view.tuples() == expected
