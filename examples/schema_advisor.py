"""The Section 4.3 walkthrough: DESIGNADVISOR and MATCHINGADVISOR.

A coordinator at the University of Washington is joining DElearning and
must design a course schema and a mapping.  Following the paper:

1. she drafts a schema fragment and asks DESIGNADVISOR for similar,
   complete schemas from the corpus (``sim = alpha*fit + beta*pref``);
2. the auto-complete suggests attributes she forgot;
3. she inlines TA columns into the course table — the advisor points out
   that "at most other universities, TA information has been modeled in
   a table separate from the course table";
4. MATCHINGADVISOR proposes the mapping to a peer university's schema,
   by correlating corpus-classifier predictions on both.

Run:  python examples/schema_advisor.py
"""

from repro.corpus import CorpusSchema, DesignAdvisor
from repro.corpus.match import MatchingAdvisor, accuracy, evaluate_matching
from repro.datasets.perturb import matching_pair
from repro.datasets.university import make_university_corpus, university_schema_instance
from repro.text import default_synonyms


def main() -> None:
    corpus = make_university_corpus(count=10, seed=42, courses=15)
    print(f"corpus: {len(corpus)} schemas, {len(corpus.mappings)} known mappings")

    # --- 1. propose complete schemas for a fragment -------------------------
    advisor = DesignAdvisor(corpus, alpha=0.7, beta=0.3)
    reference = university_schema_instance(seed=42, courses=15)
    fragment = CorpusSchema("uw-draft")
    fragment.add_relation(
        "course",
        ["title", "instructor"],
        [(row[1], row[2]) for row in reference.data["course"][:10]],
    )
    proposals = advisor.propose(fragment, limit=3)
    print("\nDESIGNADVISOR proposals (schema, score = a*fit + b*pref):")
    for proposal in proposals:
        print(
            f"  {proposal.schema.name:6s} score={proposal.score:.3f} "
            f"fit={proposal.fit:.3f} pref={proposal.preference:.3f} "
            f"({len(proposal.mapping)} correspondences)"
        )

    # --- 2. attribute auto-complete -----------------------------------------
    suggestions = advisor.autocomplete(fragment, "course")
    print("\nauto-complete for the course table:")
    for term, score in suggestions:
        print(f"  + {term:15s} (association {score:.2f})")

    # --- 3. the TA-table advice ----------------------------------------------
    fragment.relations["course"] += ["name", "email", "office_hours"]
    for advice in advisor.advise_layout(fragment):
        print(f"\nDESIGNADVISOR: {advice}")

    # --- 4. MATCHINGADVISOR ----------------------------------------------------
    left, right, gold = matching_pair(reference, seed=43, level=0.5)
    matching = MatchingAdvisor(corpus, synonyms=default_synonyms())
    result = matching.match_by_correlation(left, right)
    metrics = evaluate_matching(result.filter(0.2), set(gold.items()))
    print(
        f"\nMATCHINGADVISOR on two unseen schemas: "
        f"accuracy={accuracy(result, gold):.2f} "
        f"P={metrics['precision']:.2f} R={metrics['recall']:.2f}"
    )
    print("sample correspondences:")
    for correspondence in sorted(result, key=lambda c: -c.score)[:5]:
        print(
            f"  {correspondence.source:28s} ~ {correspondence.target:28s} "
            f"({correspondence.score:.2f})"
        )


if __name__ == "__main__":
    main()
