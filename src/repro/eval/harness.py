"""Run the IR eval: every retrieval strategy over a golden query set.

The harness is the regression gate's engine room.  It builds one
corpus + golden set (:mod:`repro.eval.golden`), routes every query
through :meth:`CorpusSearchEngine.search_schemas` once per strategy,
scores MRR / nDCG@10 / P@5 / P@10 per query, and aggregates overall
and per split.  Results are plain dicts so they serialize to the
committed baseline JSON (``benchmarks/baselines/ir_quality.json``)
unchanged.

Two entry points:

* ``run_ir_eval(config)`` — library API, used by
  ``benchmarks/bench_c16_ir_quality.py`` and ``docs/search.md``;
* ``python -m repro.eval.harness --check <baseline.json>`` — the CI
  ``ir-regression-gate`` job: recompute in quick mode, fail on any
  gated metric dropping more than ``--epsilon`` below the baseline
  (improvements pass; regenerate the baseline with ``--write`` when a
  deliberate improvement lands).

Determinism: the config seeds everything (corpus, queries, dense
projections via the engine's named seed), so two runs of the same
config on the same interpreter produce identical JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.corpus.stats import BasicStatistics
from repro.eval.golden import SPLITS, GoldenQuerySet, generate_golden_set
from repro.eval.metrics import mean_metrics, mrr, ndcg_at_k, precision_at_k

#: Strategies the harness scores, in reporting order.
EVAL_STRATEGIES = ("sparse", "dense", "hybrid")

#: Metrics the regression gate checks (the rest are reported only).
GATED_METRICS = ("mrr", "ndcg@10")

#: Allowed drop per gated metric before the gate fails.
DEFAULT_EPSILON = 0.02

#: The committed baseline the CI gate compares against.
DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "baselines" / "ir_quality.json"
)


@dataclass(frozen=True)
class EvalConfig:
    """One reproducible harness configuration (everything seeded)."""

    corpus_size: int = 120
    domains: int = 4
    seed: int = 7
    queries_per_split: int = 16
    courses: int = 2
    base_level: float = 0.6
    corpus_level: float = 0.35
    clean_level: float = 0.35
    perturbed_level: float = 0.95
    limit: int = 10


#: The CI gate's configuration — must match the committed baseline's
#: ``config`` block exactly, or the gate refuses to compare.
QUICK_CONFIG = EvalConfig()

#: The full benchmark configuration (bench C16 without BENCH_C16_QUICK).
FULL_CONFIG = EvalConfig(corpus_size=480, domains=6, queries_per_split=36, courses=3)


def build_golden_set(config: EvalConfig) -> GoldenQuerySet:
    """The golden set for ``config`` (separated for reuse in tests)."""
    return generate_golden_set(
        corpus_size=config.corpus_size,
        domains=config.domains,
        seed=config.seed,
        queries_per_split=config.queries_per_split,
        courses=config.courses,
        base_level=config.base_level,
        corpus_level=config.corpus_level,
        clean_level=config.clean_level,
        perturbed_level=config.perturbed_level,
    )


def score_query(ranked_names: list[str], relevant, limit: int) -> dict:
    """Per-query metric dict for one ranked result list."""
    return {
        "mrr": mrr(ranked_names, relevant),
        f"ndcg@{limit}": ndcg_at_k(ranked_names, relevant, limit),
        "p@5": precision_at_k(ranked_names, relevant, 5),
        f"p@{limit}": precision_at_k(ranked_names, relevant, limit),
    }


def run_ir_eval(
    config: EvalConfig = QUICK_CONFIG,
    strategies: tuple = EVAL_STRATEGIES,
    golden: GoldenQuerySet | None = None,
    engine_options: dict | None = None,
) -> dict:
    """Score every strategy over the golden set; return the report dict.

    Pass ``golden`` to reuse a prebuilt set (the benchmark scores
    several strategies against one corpus build).  The returned dict is
    the baseline JSON schema::

        {"config": {...},
         "strategies": {name: {"overall": {...},
                               "splits": {split: {...}}}}}
    """
    golden = golden or build_golden_set(config)
    stats = BasicStatistics(golden.corpus)
    stats.ensure_built()
    engine = (
        stats.configure_engine(**engine_options) if engine_options else stats.engine
    )
    # Profiles and signatures are strategy-independent: compute once.
    prepared = [
        (
            query,
            stats.schema_profile(query.schema),
            stats.schema_signature(query.schema),
        )
        for query in golden.queries
    ]
    report: dict = {"config": asdict(config), "strategies": {}}
    for strategy in strategies:
        per_split: dict[str, list[dict]] = {split: [] for split in SPLITS}
        for query, profile, signature in prepared:
            ranked = engine.search_schemas(
                profile,
                limit=config.limit,
                strategy=strategy,
                signature=signature,
            )
            names = [name for name, _score in ranked]
            per_split[query.split].append(
                score_query(names, query.relevant, config.limit)
            )
        all_queries = [metrics for split in SPLITS for metrics in per_split[split]]
        report["strategies"][strategy] = {
            "overall": mean_metrics(all_queries),
            "splits": {split: mean_metrics(per_split[split]) for split in SPLITS},
        }
    return report


def compare_to_baseline(
    current: dict,
    baseline: dict,
    epsilon: float = DEFAULT_EPSILON,
    metrics: tuple = GATED_METRICS,
) -> list[str]:
    """Regressions of ``current`` vs ``baseline`` (empty list = pass).

    A regression is any gated metric, for any strategy, overall or per
    split, more than ``epsilon`` *below* the baseline.  Improvements
    never fail.  A config mismatch is itself a failure: comparing
    different workloads silently is how gates rot.
    """
    problems: list[str] = []
    if current.get("config") != baseline.get("config"):
        problems.append(
            "config mismatch: harness config differs from the baseline's "
            f"(current={current.get('config')!r} baseline={baseline.get('config')!r}); "
            "regenerate the baseline with `python -m repro.eval.harness --write`"
        )
        return problems
    for strategy, expected in baseline.get("strategies", {}).items():
        actual = current.get("strategies", {}).get(strategy)
        if actual is None:
            problems.append(f"strategy {strategy!r} missing from the current run")
            continue
        scopes = [("overall", expected.get("overall", {}), actual.get("overall", {}))]
        for split, split_expected in expected.get("splits", {}).items():
            scopes.append(
                (f"split {split}", split_expected, actual.get("splits", {}).get(split, {}))
            )
        for scope, expected_metrics, actual_metrics in scopes:
            for metric in metrics:
                if metric not in expected_metrics:
                    continue
                want = expected_metrics[metric]
                got = actual_metrics.get(metric, 0.0)
                if got < want - epsilon:
                    problems.append(
                        f"{strategy}/{scope}/{metric}: {got:.4f} < baseline "
                        f"{want:.4f} - epsilon {epsilon}"
                    )
    return problems


def render_report(report: dict) -> str:
    """Human-readable per-strategy metric table."""
    lines = ["strategy      scope            " + "  ".join(f"{m:>8}" for m in GATED_METRICS + ("p@5",))]
    for strategy, result in report["strategies"].items():
        scopes = [("overall", result["overall"])]
        scopes += [(f"{name}", result["splits"][name]) for name in result["splits"]]
        for scope, metrics in scopes:
            values = "  ".join(
                f"{metrics.get(metric, 0.0):8.4f}" for metric in GATED_METRICS + ("p@5",)
            )
            lines.append(f"{strategy:<12}  {scope:<15}  {values}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI: run the harness; optionally write or check a baseline."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="full config (slow)")
    parser.add_argument("--write", nargs="?", const=str(DEFAULT_BASELINE), default=None,
                        metavar="PATH", help="write the baseline JSON")
    parser.add_argument("--check", nargs="?", const=str(DEFAULT_BASELINE), default=None,
                        metavar="PATH", help="fail on regression vs the baseline JSON")
    parser.add_argument("--epsilon", type=float, default=DEFAULT_EPSILON)
    args = parser.parse_args(argv)
    config = FULL_CONFIG if args.full else QUICK_CONFIG
    report = run_ir_eval(config)
    print(render_report(report))
    if args.write:
        path = Path(args.write)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"baseline written: {path}")
    if args.check:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        problems = compare_to_baseline(report, baseline, epsilon=args.epsilon)
        if problems:
            print("IR regression gate FAILED:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("IR regression gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
